"""Unit tests for CDFF (Algorithm 2) and its static-row ablation."""

import math

import pytest

from repro.algorithms.cdff import (
    CDFF,
    StaticRowsCDFF,
    aligned_class,
    trailing_zeros,
)
from repro.core.errors import AlignmentError
from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.simulation import IncrementalSimulation, simulate
from repro.core.validate import audit
from repro.workloads.aligned import aligned_random, binary_input


class TestHelpers:
    def test_aligned_class_boundaries(self):
        assert aligned_class(1.0) == 0
        assert aligned_class(0.75) == 0
        assert aligned_class(2.0) == 1
        assert aligned_class(2.5) == 2
        assert aligned_class(8.0) == 3

    def test_aligned_class_too_short(self):
        with pytest.raises(AlignmentError):
            aligned_class(0.5)

    def test_trailing_zeros(self):
        assert trailing_zeros(1) == 0
        assert trailing_zeros(2) == 1
        assert trailing_zeros(12) == 2
        assert trailing_zeros(64) == 6

    def test_trailing_zeros_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            trailing_zeros(0)


class TestAlignmentEnforcement:
    def test_non_integer_arrival_rejected(self):
        inst = Instance.from_tuples([(0.5, 1.5, 0.1)])
        with pytest.raises(AlignmentError):
            simulate(CDFF(), inst)

    def test_misaligned_arrival_rejected(self):
        # class-2 item (length 4) must arrive at multiples of 4
        inst = Instance.from_tuples([(0, 4, 0.1), (2, 6, 0.1)])
        with pytest.raises(AlignmentError):
            simulate(CDFF(), inst)

    def test_aligned_arrival_accepted(self):
        inst = Instance.from_tuples([(0, 4, 0.1), (4, 8, 0.1)])
        audit(simulate(CDFF(), inst))


class TestRowPlacement:
    def test_t0_batch_rows(self):
        """At t=0 of σ_8, length 2^i goes to row log μ − i (Lemma 5.5)."""
        alg = CDFF()
        sim = IncrementalSimulation(alg)
        for uid, length in enumerate([1.0, 2.0, 4.0, 8.0]):
            sim.release(Item(0.0, length, 0.2, uid=uid))
        # rows bind relative to the largest class (3)
        assert alg.row_of_item(0) == 3  # length 1 → row 3
        assert alg.row_of_item(3) == 0  # length 8 → row 0

    def test_batch_binding_independent_of_order(self):
        """The longest item may arrive last; rows must come out the same."""
        for order in ([1.0, 2.0, 4.0, 8.0], [8.0, 4.0, 2.0, 1.0], [2.0, 8.0, 1.0, 4.0]):
            alg = CDFF()
            sim = IncrementalSimulation(alg)
            uid_of = {}
            for uid, length in enumerate(order):
                sim.release(Item(0.0, length, 0.2, uid=uid))
                uid_of[length] = uid
            assert alg.row_of_item(uid_of[8.0]) == 0
            assert alg.row_of_item(uid_of[1.0]) == 3

    def test_post_batch_row_uses_trailing_zeros(self):
        """σ_8 at t=1: m_t = 0, so the length-1 item goes to row 0 and joins
        the bin holding the length-8 item (the Lemma 5.5 example)."""
        alg = CDFF()
        sim = IncrementalSimulation(alg)
        for uid, length in enumerate([1.0, 2.0, 4.0, 8.0]):
            sim.release(Item(0.0, length, 0.2, uid=uid))
        b = sim.release(Item(1.0, 2.0, 0.2, uid=4))
        assert alg.row_of_item(4) == 0
        # shares the row-0 bin with the length-8 item
        assert 3 in b

    def test_row_bin_removed_when_empty(self):
        alg = CDFF()
        sim = IncrementalSimulation(alg)
        sim.release(Item(0.0, 1.0, 0.2, uid=0))
        sim.release(Item(1.0, 2.0, 0.2, uid=1))  # t=1: old bin closed
        rows = alg.rows_snapshot()
        total_bins = sum(len(v) for v in rows.values())
        assert total_bins == 1

    def test_first_fit_within_row(self):
        # two big same-class items at t=0 → two bins in the same row
        alg = CDFF()
        sim = IncrementalSimulation(alg)
        sim.release(Item(0.0, 1.0, 0.8, uid=0))
        sim.release(Item(0.0, 1.0, 0.8, uid=1))
        sim.release(Item(0.0, 1.0, 0.1, uid=2))  # fits the first bin
        rows = alg.rows_snapshot()
        (row_bins,) = rows.values()
        assert len(row_bins) == 2
        assert 2 in row_bins[0]


class TestSegments:
    def test_new_segment_after_horizon(self):
        # σ_0 covers [0, 4]; arrivals at 4 start a fresh segment
        inst = Instance.from_tuples(
            [(0, 4, 0.3), (0, 1, 0.3), (4, 8, 0.3), (5, 6, 0.3)]
        )
        res = simulate(CDFF(), inst)
        audit(res)

    def test_segment_rows_reset(self):
        alg = CDFF()
        sim = IncrementalSimulation(alg)
        sim.release(Item(0.0, 2.0, 0.3, uid=0))
        sim.release(Item(2.0, 4.0, 0.3, uid=1))  # new segment at t=2
        assert alg.row_of_item(1) >= 0

    def test_long_quiet_gap(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (100, 101, 0.5)])
        res = simulate(CDFF(), inst)
        audit(res)
        assert res.n_bins == 2
        assert math.isclose(res.cost, 2.0)


class TestCorollary58Small:
    @pytest.mark.parametrize("mu", [2, 4, 8, 16, 32])
    def test_identity(self, mu):
        from repro.analysis.binary_strings import max_zero_run

        res = simulate(CDFF(), binary_input(mu))
        audit(res)
        prof = res.open_bins_profile()
        n = int(math.log2(mu))
        for t in range(mu):
            expected = max_zero_run(t, n) + 1 if n else 1
            assert int(prof(float(t))) == expected, f"t={t}"


class TestOnAlignedRandom:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_audit_clean(self, seed):
        inst = aligned_random(64, 150, seed=seed)
        res = simulate(CDFF(), inst)
        audit(res)

    def test_cost_at_least_lower_bounds(self):
        inst = aligned_random(64, 150, seed=3)
        res = simulate(CDFF(), inst)
        assert res.cost >= inst.demand - 1e-9
        assert res.cost >= inst.span - 1e-9

    def test_respects_theorem51_bound(self):
        from repro.analysis.theory import cdff_aligned_upper_bound
        from repro.offline.optimal import opt_reference

        inst = aligned_random(256, 200, seed=5)
        res = simulate(CDFF(), inst)
        opt = opt_reference(inst, max_exact=16)
        assert res.cost / opt.lower <= cdff_aligned_upper_bound(256)


class TestStaticRows:
    def test_one_bin_per_class_on_binary(self):
        res = simulate(StaticRowsCDFF(), binary_input(16))
        audit(res)
        # static rows: each class occupies its own bin at all times
        assert res.cost == 16 * (math.log2(16) + 1)

    def test_dynamic_beats_static_on_binary(self):
        mu = 256
        dyn = simulate(CDFF(), binary_input(mu)).cost
        stat = simulate(StaticRowsCDFF(), binary_input(mu)).cost
        assert dyn < stat

    def test_rejects_misaligned_lengths(self):
        inst = Instance.from_tuples([(0.0, 0.4, 0.1)])
        with pytest.raises(AlignmentError):
            simulate(StaticRowsCDFF(), inst)
