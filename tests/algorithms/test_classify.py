"""Unit tests for classify-by-duration algorithms."""

import math

import pytest

from repro.algorithms.classify import (
    ClassifyByDuration,
    RenTang,
    optimal_rentang_n,
)
from repro.core.errors import InvalidItemError
from repro.core.instance import Instance
from repro.core.simulation import simulate
from repro.core.validate import audit


class TestClassifyByDuration:
    def test_items_of_different_classes_never_share(self):
        # a 1-length and an 8-length item, both tiny: CBD keeps them apart
        inst = Instance.from_tuples([(0, 1, 0.1), (0, 8, 0.1)])
        res = simulate(ClassifyByDuration(), inst)
        assert res.assignment[0] != res.assignment[1]
        assert res.n_bins == 2

    def test_same_class_shares(self):
        inst = Instance.from_tuples([(0, 3, 0.1), (0, 4, 0.1)])
        res = simulate(ClassifyByDuration(), inst)
        assert res.assignment[0] == res.assignment[1]

    def test_first_fit_within_class(self):
        inst = Instance.from_tuples(
            [(0, 4, 0.6), (0, 4, 0.6), (1, 4, 0.3)]
        )
        res = simulate(ClassifyByDuration(), inst)
        assert res.assignment[2] == res.assignment[0]

    def test_closed_class_bin_removed_from_pool(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (2, 3, 0.5)])
        res = simulate(ClassifyByDuration(), inst)
        audit(res)
        assert res.n_bins == 2

    def test_custom_base(self):
        # base 4: lengths 2 and 3 share class 1 = (1, 4] → same bin
        inst = Instance.from_tuples([(0, 2, 0.1), (0, 3, 0.1)])
        res = simulate(ClassifyByDuration(base=4.0), inst)
        assert res.assignment[0] == res.assignment[1]
        # but base 2 separates them: class(2)=1, class(3)=2
        res2 = simulate(ClassifyByDuration(base=2.0), inst)
        assert res2.assignment[0] != res2.assignment[1]

    def test_invalid_base(self):
        with pytest.raises(InvalidItemError):
            ClassifyByDuration(base=1.0)

    def test_tags_carry_class(self):
        inst = Instance.from_tuples([(0, 8, 0.1)])
        res = simulate(ClassifyByDuration(), inst)
        assert res.bins[0].tag == ("class", 3)


class TestOptimalRenTangN:
    def test_small_mu(self):
        assert optimal_rentang_n(1.0) == 1
        assert optimal_rentang_n(2.0) >= 1

    def test_minimises(self):
        mu = 1024.0
        n_star = optimal_rentang_n(mu)
        f = lambda n: mu ** (1.0 / n) + n + 3
        assert all(f(n_star) <= f(n) + 1e-9 for n in range(1, 60))

    def test_grows_with_mu(self):
        assert optimal_rentang_n(2.0**20) >= optimal_rentang_n(2.0**4)


class TestRenTang:
    def test_basic_run(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (0, 16, 0.5), (1, 4, 0.5)])
        res = simulate(RenTang(16.0), inst)
        audit(res)

    def test_single_class_behaves_like_ff(self):
        inst = Instance.from_tuples([(0, 2, 0.5), (0, 3, 0.4), (1, 4, 0.1)])
        res_rt = simulate(RenTang(4.0, n=1), inst)
        from repro.algorithms.anyfit import FirstFit

        res_ff = simulate(FirstFit(), inst)
        assert res_rt.cost == res_ff.cost

    def test_out_of_range_length_rejected(self):
        inst = Instance.from_tuples([(0, 100.0, 0.5)])
        with pytest.raises(InvalidItemError):
            simulate(RenTang(16.0), inst)

    def test_boundary_lengths_accepted(self):
        inst = Instance.from_tuples([(0, 1.0, 0.5), (0, 16.0, 0.5)])
        res = simulate(RenTang(16.0), inst)
        audit(res)

    def test_classes_partition_range(self):
        rt = RenTang(64.0, n=3)
        from repro.core.item import Item

        ks = [rt._class_of(Item(0, l, 0.5)) for l in (1.0, 3.9, 4.1, 15.9, 16.1, 64.0)]
        assert min(ks) == 0 and max(ks) == 2
        assert ks == sorted(ks)

    def test_invalid_mu(self):
        with pytest.raises(InvalidItemError):
            RenTang(0.5)

    def test_invalid_n(self):
        with pytest.raises(InvalidItemError):
            RenTang(16.0, n=0)

    def test_default_n_is_optimal(self):
        assert RenTang(1024.0).n == optimal_rentang_n(1024.0)

    def test_respects_upper_bound_on_random(self):
        from repro.analysis.theory import rentang_upper_bound
        from repro.offline.optimal import opt_reference
        from repro.workloads.random_general import uniform_random

        mu = 64.0
        inst = uniform_random(200, mu, seed=2)
        rt = RenTang(mu)
        res = simulate(rt, inst)
        audit(res)
        opt = opt_reference(inst, max_exact=16)
        assert res.cost / opt.lower <= rentang_upper_bound(mu, rt.n) + 1e-9
