"""Unit tests for :mod:`repro.algorithms.base` — the type system of Sec. 3."""

import math

import pytest

from repro.algorithms.base import (
    duration_class,
    first_fit_choice,
    item_type,
    type_departure_deadline,
)
from repro.core.bins import Bin
from repro.core.errors import InvalidItemError
from repro.core.item import Item


class TestDurationClass:
    def test_length_one_folds_into_class_one(self):
        assert duration_class(1.0) == 1

    def test_open_closed_boundaries(self):
        # (2^{i-1}, 2^i]: length exactly 2^i belongs to class i
        assert duration_class(2.0) == 1
        assert duration_class(2.0001) == 2
        assert duration_class(4.0) == 2

    def test_large(self):
        assert duration_class(1024.0) == 10
        assert duration_class(1025.0) == 11

    def test_min_class_zero(self):
        assert duration_class(1.0, min_class=0) == 0
        assert duration_class(0.75, min_class=0) == 0
        assert duration_class(2.0, min_class=0) == 1

    def test_invalid_length(self):
        with pytest.raises(InvalidItemError):
            duration_class(0.0)
        with pytest.raises(InvalidItemError):
            duration_class(math.inf)

    def test_float_noise_near_power_of_two(self):
        # 8.0 computed as 2**3 with float noise must stay class 3
        assert duration_class(8.0 * (1 + 1e-14)) == 3


class TestItemType:
    def test_arrival_zero(self):
        assert item_type(Item(0.0, 4.0, 0.5)) == (2, 0)

    def test_arrival_in_first_window(self):
        # window ((c-1)·2^i, c·2^i]: arrival 3 with i=2 → c=1
        assert item_type(Item(3.0, 6.0, 0.5)) == (2, 1)

    def test_arrival_at_window_boundary(self):
        # arrival exactly 4 with i=2 → c=1 (window (0,4])
        assert item_type(Item(4.0, 8.0, 0.5)) == (2, 1)

    def test_arrival_just_after_boundary(self):
        assert item_type(Item(4.0001, 8.0, 0.5)) == (2, 2)

    def test_same_moment_two_types_max(self):
        # at a fixed time, for a fixed i only two windows can hold live items
        i = 3
        width = 2**i
        t = 10.0
        cs = set()
        for arr in [t - width + 0.01, t - 1.0, t]:
            if arr >= 0:
                cs.add(item_type(Item(arr, arr + width, 0.1))[1])
        assert len(cs) <= 2


class TestDeadline:
    def test_deadline(self):
        assert type_departure_deadline((2, 0)) == 4.0
        assert type_departure_deadline((2, 1)) == 8.0
        assert type_departure_deadline((3, 2)) == 24.0

    def test_deadline_covers_departure(self):
        # any item's reduced departure is ≥ its true departure
        for arr, dep in [(0.0, 3.5), (5.0, 9.0), (7.9, 8.0), (16.0, 31.0)]:
            it = Item(arr, dep, 0.5)
            T = item_type(it)
            assert type_departure_deadline(T) >= dep - 1e-9

    def test_deadline_at_most_4x_length(self):
        for arr, dep in [(0.0, 1.0), (3.0, 4.5), (10.0, 11.0), (2.5, 18.0)]:
            it = Item(arr, dep, 0.5)
            T = item_type(it)
            new_len = type_departure_deadline(T) - arr
            assert new_len <= 4.0 * it.length + 1e-9


class TestFirstFitChoice:
    def test_picks_earliest_fitting(self):
        b1 = Bin(0, 1.0, 0.0)
        b2 = Bin(1, 1.0, 0.0)
        b1._add(Item(0, 1, 0.9, uid=0))
        item = Item(0, 1, 0.5, uid=1)
        assert first_fit_choice([b1, b2], item) is b2

    def test_none_when_nothing_fits(self):
        b1 = Bin(0, 1.0, 0.0)
        b1._add(Item(0, 1, 0.9, uid=0))
        assert first_fit_choice([b1], Item(0, 1, 0.5, uid=1)) is None

    def test_empty_sequence(self):
        assert first_fit_choice([], Item(0, 1, 0.5)) is None
