"""Unit tests for the LeastExpansion clairvoyant greedy."""

import math

import pytest

from repro.algorithms.greedy import LeastExpansion
from repro.core.errors import ClairvoyanceError
from repro.core.instance import Instance
from repro.core.simulation import simulate
from repro.core.validate import audit


class TestPlacement:
    def test_reuses_covering_bin_for_free(self):
        # a long item's bin covers a nested short item: zero expansion
        inst = Instance.from_tuples([(0, 10, 0.5), (2, 5, 0.5)])
        res = simulate(LeastExpansion(), inst)
        assert res.n_bins == 1
        assert math.isclose(res.cost, 10.0)

    def test_prefers_smaller_expansion(self):
        # bins ending at 6 and 9 open; new item ends at 10: joining the
        # 9-bin costs 1, the 6-bin costs 4 → picks the 9-bin
        inst = Instance.from_tuples(
            [(0, 6, 0.6), (0, 9, 0.6), (1, 10, 0.3)]
        )
        res = simulate(LeastExpansion(), inst)
        assert res.assignment[2] == res.assignment[1]

    def test_opens_new_when_expansion_too_large(self):
        # joining would expand by the full length → indifferent; strict
        # improvement required, so it opens fresh only if expansion ≥ length
        inst = Instance.from_tuples([(0, 1, 0.5), (0.5, 10.0, 0.4)])
        res = simulate(LeastExpansion(), inst)
        # expansion = 10 − 1 = 9 < 9.5 = length → joins the open bin
        assert res.n_bins == 1

    def test_slack_zero_never_joins_unless_free(self):
        alg = LeastExpansion(slack=0.0)
        inst = Instance.from_tuples([(0, 4, 0.3), (1, 5, 0.3)])
        res = simulate(alg, inst)
        # joining costs 1 > 0·length → opens a second bin
        assert res.n_bins == 2

    def test_requires_clairvoyance(self):
        from repro.core.item import Item
        from repro.core.simulation import IncrementalSimulation

        alg = LeastExpansion()
        alg.clairvoyant = False  # force the simulator to mask departures
        sim = IncrementalSimulation(alg)
        with pytest.raises(ClairvoyanceError):
            sim.release(Item(0, 5, 0.5, uid=0))

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            LeastExpansion(slack=-1)


class TestQuality:
    def test_audit_clean_on_random(self):
        from repro.workloads.random_general import uniform_random

        for seed in range(3):
            res = simulate(LeastExpansion(), uniform_random(150, 32, seed=seed))
            audit(res)

    def test_beats_first_fit_on_nested_trace(self):
        """Nested departures reward exact-departure awareness."""
        from repro.algorithms.anyfit import FirstFit
        from repro.workloads.cloud import cloud_gaming

        inst = cloud_gaming(40.0, seed=13).normalized()
        le = simulate(LeastExpansion(), inst)
        ff = simulate(FirstFit(), inst)
        audit(le)
        assert le.cost <= ff.cost * 1.1  # at worst comparable

    def test_still_forced_by_adversary(self):
        from repro.adversary.sqrt_log import SqrtLogAdversary

        mu = 64
        adv = SqrtLogAdversary(mu)
        out = adv.run(LeastExpansion())
        assert out.online_cost >= mu * adv.target_bins - 1e-9
