"""Unit tests for the Any-Fit family."""

import math

import pytest

from repro.algorithms.anyfit import (
    AnyFit,
    BestFit,
    FirstFit,
    LastFit,
    NextFit,
    RandomFit,
    WorstFit,
)
from repro.core.instance import Instance
from repro.core.simulation import simulate
from repro.core.validate import audit


def crafted():
    """Three bins with loads 0.2, 0.7, 0.5 alive when a 0.25 item arrives.

    Built so First/Best/Worst/Last-Fit all choose different bins.
    """
    return Instance.from_tuples(
        [
            (0.0, 10.0, 0.2),  # bin A
            (0.0, 10.0, 0.9),  # forces bin B...
            (0.5, 10.0, 0.7),  # ...but arrives later: bin B
            (0.6, 10.0, 0.5),  # bin C (doesn't fit A? 0.2+0.5=0.7 fits!)
        ]
    )


class TestFirstFit:
    def test_fills_earliest(self):
        inst = Instance.from_tuples(
            [(0, 4, 0.5), (0, 4, 0.9), (1, 4, 0.3)]
        )
        res = simulate(FirstFit(), inst)
        # 0.3 goes into the first (0.5) bin, not the 0.9 bin
        assert res.assignment[2] == res.assignment[0]

    def test_opens_when_nothing_fits(self):
        inst = Instance.from_tuples([(0, 2, 0.9), (0, 2, 0.9)])
        res = simulate(FirstFit(), inst)
        assert res.n_bins == 2

    def test_closed_bin_never_reused(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (2, 3, 0.5)])
        res = simulate(FirstFit(), inst)
        assert res.n_bins == 2
        assert res.assignment[0] != res.assignment[1]

    def test_name(self):
        assert FirstFit().name == "FirstFit"

    def test_nonclairvoyant_flag(self):
        assert FirstFit(clairvoyant=False).clairvoyant is False


def two_bins_then_probe(probe_size: float) -> Instance:
    """Two items that cannot share a bin (0.5 and 0.6), then a probe item
    fitting both bins — the rule under test decides where the probe goes."""
    return Instance.from_tuples(
        [(0, 4, 0.5), (0, 4, 0.6), (1, 4, probe_size)]
    )


class TestBestFit:
    def test_picks_fullest(self):
        res = simulate(BestFit(), two_bins_then_probe(0.35))
        # fullest fitting bin is the 0.6 one
        assert res.assignment[2] == res.assignment[1]
        audit(res)

    def test_tie_goes_to_earliest(self):
        inst = Instance.from_tuples(
            [(0, 4, 0.55), (0, 4, 0.55), (1, 4, 0.4)]
        )
        res = simulate(BestFit(), inst)
        assert res.assignment[2] == res.assignment[0]


class TestWorstFit:
    def test_picks_emptiest(self):
        res = simulate(WorstFit(), two_bins_then_probe(0.35))
        assert res.assignment[2] == res.assignment[0]


class TestLastFit:
    def test_picks_most_recent(self):
        res = simulate(LastFit(), two_bins_then_probe(0.35))
        assert res.assignment[2] == res.assignment[1]


class TestNextFit:
    def test_ignores_older_bins(self):
        inst = Instance.from_tuples(
            [(0, 4, 0.5), (0, 4, 0.9), (1, 4, 0.3)]
        )
        res = simulate(NextFit(), inst)
        # active bin is the 0.9 one; 0.3 doesn't fit → new bin (not bin 0!)
        assert res.assignment[2] not in (res.assignment[0], res.assignment[1])
        assert res.n_bins == 3

    def test_reuses_active(self):
        inst = Instance.from_tuples([(0, 4, 0.3), (1, 4, 0.3)])
        res = simulate(NextFit(), inst)
        assert res.n_bins == 1

    def test_active_bin_closing_resets(self):
        inst = Instance.from_tuples([(0, 1, 0.3), (2, 3, 0.3)])
        res = simulate(NextFit(), inst)
        audit(res)
        assert res.n_bins == 2


class TestRandomFit:
    def test_deterministic_given_seed(self, tiny_instance):
        r1 = simulate(RandomFit(seed=5), tiny_instance)
        r2 = simulate(RandomFit(seed=5), tiny_instance)
        assert r1.assignment == r2.assignment

    def test_valid_packing(self):
        inst = Instance.from_tuples([(0, 4, 0.4)] * 10)
        res = simulate(RandomFit(seed=1), inst)
        audit(res)

    def test_reset_restores_stream(self, tiny_instance):
        alg = RandomFit(seed=3)
        r1 = simulate(alg, tiny_instance)
        r2 = simulate(alg, tiny_instance)  # reset() called by the simulator
        assert r1.assignment == r2.assignment


class TestAnyFitGeneric:
    def test_custom_rule(self):
        def middle(cands, item):
            return cands[len(cands) // 2]

        alg = AnyFit(middle, name="MiddleFit")
        inst = Instance.from_tuples([(0, 4, 0.2)] * 3 + [(1, 4, 0.9)])
        res = simulate(alg, inst)
        audit(res)
        assert res.algorithm == "MiddleFit"

    def test_default_name_from_rule(self):
        from repro.algorithms.anyfit import BEST_FIT

        assert "BEST_FIT" in AnyFit(BEST_FIT).name

    @pytest.mark.parametrize(
        "factory", [FirstFit, BestFit, WorstFit, LastFit, NextFit]
    )
    def test_all_audit_clean_on_stress(self, factory):
        from repro.workloads.random_general import uniform_random

        inst = uniform_random(150, 32, seed=11)
        res = simulate(factory(), inst)
        audit(res)
        # any-fit cost is at least demand and span
        assert res.cost >= inst.demand - 1e-9
        assert res.cost >= inst.span - 1e-9
