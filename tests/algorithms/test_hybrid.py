"""Unit tests for the Hybrid Algorithm (Algorithm 1)."""

import math

import pytest

from repro.algorithms.hybrid import (
    CD_TAG,
    GN_TAG,
    HybridAlgorithm,
    sqrt_threshold,
)
from repro.analysis.theory import ha_gn_bound
from repro.core.instance import Instance
from repro.core.simulation import IncrementalSimulation, simulate
from repro.core.item import Item
from repro.core.validate import audit


def tags(result):
    return [rec.tag for rec in result.bins]


class TestThreshold:
    def test_sqrt_threshold_values(self):
        assert sqrt_threshold(1) == 0.5
        assert math.isclose(sqrt_threshold(4), 0.25)

    def test_threshold_decreasing(self):
        vals = [sqrt_threshold(i) for i in range(1, 30)]
        assert vals == sorted(vals, reverse=True)


class TestRouting:
    def test_small_load_goes_gn(self):
        # one tiny class-1 item: load 0.1 ≤ 1/2 → GN
        inst = Instance.from_tuples([(0, 2, 0.1)])
        res = simulate(HybridAlgorithm(), inst)
        assert tags(res) == [(GN_TAG,)]

    def test_threshold_crossing_opens_cd(self):
        # class 1 threshold is 1/2: the third 0.2-item crosses it
        inst = Instance.from_tuples([(0, 2, 0.2)] * 3)
        res = simulate(HybridAlgorithm(), inst)
        t = tags(res)
        assert (GN_TAG,) in t
        assert any(tag[0] == CD_TAG for tag in t)

    def test_big_item_goes_directly_cd(self):
        # a single 0.9-item of class 1 exceeds 1/2 immediately
        inst = Instance.from_tuples([(0, 2, 0.9)])
        res = simulate(HybridAlgorithm(), inst)
        assert tags(res)[0][0] == CD_TAG

    def test_cd_bin_attracts_same_type(self):
        # once a CD bin exists for T, later T items go CD even when small;
        # both items are type (1, 1): class-1 lengths, arrivals in (0, 2]
        inst = Instance.from_tuples([(0.5, 2.4, 0.9), (1.0, 2.4, 0.05)])
        res = simulate(HybridAlgorithm(), inst)
        assert all(tag[0] == CD_TAG for tag in tags(res))
        # and they share the bin (0.95 ≤ 1)
        assert res.assignment[0] == res.assignment[1]

    def test_different_types_use_different_cd_bins(self):
        # class 1 (len 2) and class 3 (len 8), both large
        inst = Instance.from_tuples([(0, 2, 0.9), (0, 8, 0.9)])
        res = simulate(HybridAlgorithm(), inst)
        assert res.assignment[0] != res.assignment[1]
        assert {tag[0] for tag in tags(res)} == {CD_TAG}

    def test_cd_types_recorded_in_tag(self):
        inst = Instance.from_tuples([(0, 8, 0.9)])
        res = simulate(HybridAlgorithm(), inst)
        tag = res.bins[0].tag
        assert tag[0] == CD_TAG and tag[1] == (3, 0)

    def test_gn_shared_across_types(self):
        # two tiny items of different classes share one GN bin (first-fit)
        inst = Instance.from_tuples([(0, 2, 0.1), (0, 8, 0.1)])
        res = simulate(HybridAlgorithm(), inst)
        assert res.n_bins == 1
        assert tags(res) == [(GN_TAG,)]

    def test_departed_load_not_counted(self):
        # two 0.4 class-1 items in sequence (no overlap): the second sees
        # active load 0.4 ≤ 0.5 → still GN (old item departed)
        inst = Instance.from_tuples([(0, 1.5, 0.4), (2, 3.5, 0.4)])
        res = simulate(HybridAlgorithm(), inst)
        assert all(tag == (GN_TAG,) for tag in tags(res))

    def test_type_window_separates_arrivals(self):
        # same class, different windows c → different types: each window's
        # load is counted separately
        inst = Instance.from_tuples([(0, 2, 0.4), (2.5, 4.4, 0.4)])
        alg = HybridAlgorithm()
        res = simulate(alg, inst)
        assert all(tag == (GN_TAG,) for tag in tags(res))


class TestStateAccounting:
    def test_type_load_tracks_arrivals_and_departures(self):
        alg = HybridAlgorithm()
        sim = IncrementalSimulation(alg)
        sim.release(Item(0.5, 2.5, 0.3, uid=0))
        T = (1, 1)  # class-1 length, arrival window (0, 2]
        assert math.isclose(alg.active_type_load(T), 0.3)
        sim.release(Item(1.0, 2.5, 0.1, uid=1))
        assert math.isclose(alg.active_type_load(T), 0.4)
        sim.run_until(2.5)
        assert alg.active_type_load(T) == 0.0

    def test_gn_and_cd_counters(self):
        alg = HybridAlgorithm()
        sim = IncrementalSimulation(alg)
        sim.release(Item(0.0, 2.0, 0.1, uid=0))
        assert alg.gn_open() == 1 and alg.cd_open() == 0
        sim.release(Item(0.0, 2.0, 0.9, uid=1))
        assert alg.cd_open() == 1
        sim.run_until(2.0)
        assert alg.gn_open() == 0 and alg.cd_open() == 0

    def test_reset_clears_state(self):
        alg = HybridAlgorithm()
        simulate(alg, Instance.from_tuples([(0, 2, 0.9)]))
        assert alg.cd_open() == 0  # closed at departure
        simulate(alg, Instance.from_tuples([(0, 2, 0.1)]))
        assert alg.max_gn_open == 1  # not carried over


class TestLemma33:
    @pytest.mark.parametrize("mu", [4, 64, 1024])
    def test_gn_bound_on_random(self, mu):
        from repro.workloads.random_general import uniform_random

        alg = HybridAlgorithm()
        res = simulate(alg, uniform_random(400, mu, seed=0))
        audit(res)
        assert alg.max_gn_open <= ha_gn_bound(mu)

    def test_gn_bound_on_dense_schedule(self):
        from repro.workloads.adversarial import full_adversary_schedule

        alg = HybridAlgorithm()
        res = simulate(alg, full_adversary_schedule(64))
        audit(res)
        assert alg.max_gn_open <= ha_gn_bound(64)


class TestAblationKnobs:
    def test_all_gn_threshold_behaves_like_first_fit(self):
        from repro.algorithms.anyfit import FirstFit
        from repro.workloads.random_general import uniform_random

        inst = uniform_random(120, 16, seed=4)
        ha = simulate(HybridAlgorithm(threshold=lambda i: math.inf), inst)
        ff = simulate(FirstFit(), inst)
        assert math.isclose(ha.cost, ff.cost)

    def test_all_cd_threshold_never_opens_gn(self):
        from repro.workloads.random_general import uniform_random

        inst = uniform_random(120, 16, seed=4)
        res = simulate(HybridAlgorithm(threshold=lambda i: 0.0), inst)
        assert all(tag[0] == CD_TAG for tag in tags(res))

    def test_custom_rule_accepted(self):
        from repro.algorithms.anyfit import BEST_FIT
        from repro.workloads.random_general import uniform_random

        inst = uniform_random(120, 16, seed=4)
        res = simulate(HybridAlgorithm(rule=BEST_FIT), inst)
        audit(res)

    def test_custom_name(self):
        assert HybridAlgorithm(name="HA-x").name == "HA-x"
