"""Unit tests for the ASCII renderers and figure regeneration."""

import math

import pytest

from repro.algorithms.cdff import CDFF
from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.simulation import IncrementalSimulation, simulate
from repro.viz.ascii import render_instance, render_packing, render_rows, timeline_scale
from repro.viz.figures import figure1, figure2, figure3
from repro.workloads.aligned import binary_input


class TestTimelineScale:
    def test_endpoints(self):
        to_col = timeline_scale(0.0, 10.0, 51)
        assert to_col(0.0) == 0
        assert to_col(10.0) == 50
        assert to_col(5.0) == 25

    def test_clamps(self):
        to_col = timeline_scale(0.0, 10.0, 11)
        assert to_col(-5.0) == 0
        assert to_col(50.0) == 10


class TestRenderInstance:
    def test_empty(self):
        assert "empty" in render_instance(Instance([]))

    def test_sigma8_has_four_class_lines(self):
        text = render_instance(binary_input(8))
        for cls in range(4):
            assert f"class {cls}" in text

    def test_item_bars_present(self):
        text = render_instance(Instance.from_tuples([(0, 4, 0.5)]))
        assert "[" in text and ")" in text

    def test_overlapping_same_class_stacked(self):
        inst = Instance.from_tuples([(0, 4, 0.2), (1, 5, 0.2)])
        text = render_instance(inst)
        # two sub-lines → more lines than a single-item render
        assert text.count("|") >= 4


class TestRenderPacking:
    def test_no_bins(self):
        res = simulate(CDFF(), Instance([]))
        assert "no bins" in render_packing(res)

    def test_one_line_per_bin(self):
        res = simulate(CDFF(), binary_input(8))
        text = render_packing(res)
        assert sum(1 for l in text.splitlines() if l.startswith("bin")) == res.n_bins

    def test_cost_in_header(self):
        res = simulate(CDFF(), binary_input(8))
        assert f"cost {res.cost:g}" in render_packing(res)

    def test_occupancy_digits(self):
        res = simulate(CDFF(), binary_input(8))
        text = render_packing(res)
        # bin b_0^1 holds up to 4 items at t=7
        assert "4" in text


class TestRenderRows:
    def test_empty(self):
        assert "no open rows" in render_rows({})

    def test_gauge_proportional(self):
        from repro.core.bins import Bin

        b = Bin(0, 1.0, 0.0)
        b._add(Item(0, 1, 0.5, uid=0))
        text = render_rows({0: [b]}, gauge=10)
        assert "[#####.....]" in text

    def test_live_snapshot(self):
        alg = CDFF()
        sim = IncrementalSimulation(alg)
        for uid, length in enumerate([1.0, 2.0, 4.0]):
            sim.release(Item(0.0, length, 0.3, uid=uid))
        text = render_rows(alg.rows_snapshot())
        assert "row  0" in text and "row  2" in text


class TestFigures:
    def test_figure1_renders_rows(self):
        text = figure1(mu=16, n_items=40, seed=3)
        assert "Figure 1" in text
        assert "row" in text

    def test_figure1_explicit_time(self):
        text = figure1(mu=16, n_items=40, seed=3, stop_at=0)
        assert "t=0" in text

    def test_figure1_custom_instance(self):
        from repro.workloads.aligned import binary_input

        text = figure1(instance=binary_input(8), stop_at=0)
        assert "μ=8" in text
        # σ_8's t=0 batch opens one bin in each of rows 0..3
        assert sum(1 for l in text.splitlines() if l.startswith("row")) == 4

    def test_figure2_structure(self):
        text = figure2(mu=8)
        assert "σ_8" in text
        # 2μ−1 = 15 item bars (count only inside the timeline lines)
        bars = sum(l.count("[") for l in text.splitlines() if l.rstrip().endswith("|"))
        assert bars == 15

    def test_figure3_matches_lemma55(self):
        """Figure 3's bins must realise the Lemma 5.5 mapping: the length-8
        item's bin also hosts length-1 items at odd times."""
        text = figure3(mu=8)
        assert "Figure 3" in text
        assert "CDFF" in text

    def test_figure3_bin_count(self):
        res = simulate(CDFF(), binary_input(8))
        text = figure3(mu=8)
        assert sum(1 for l in text.splitlines() if l.startswith("bin")) == res.n_bins
