"""Unit tests for the ASCII charts and growth-curve rendering."""

import pytest

from repro.viz.plots import ascii_chart


class TestAsciiChart:
    def test_empty(self):
        assert "no series" in ascii_chart([1, 2], {})

    def test_markers_present(self):
        text = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "o" in text and "x" in text
        assert "o a" in text and "x b" in text

    def test_title(self):
        text = ascii_chart([1, 2], {"a": [1.0, 2.0]}, title="my chart")
        assert text.startswith("my chart")

    def test_xticks_rendered(self):
        text = ascii_chart([4, 16, 1024], {"a": [1.0, 2.0, 3.0]})
        assert "1024" in text
        assert "(μ)" in text

    def test_monotone_series_monotone_rows(self):
        """An increasing series must appear at non-increasing row indices."""
        text = ascii_chart([1, 2, 3, 4], {"a": [1.0, 2.0, 3.0, 4.0]}, height=10)
        rows = [
            (r, line.index("o"))
            for r, line in enumerate(text.splitlines())
            if "o" in line and "|" in line
        ]
        # later columns (larger y) appear at smaller row numbers (higher up)
        by_col = sorted(rows, key=lambda rc: rc[1])
        row_indices = [r for r, _ in by_col]
        assert row_indices == sorted(row_indices, reverse=True)

    def test_constant_series_handled(self):
        text = ascii_chart([1, 2], {"a": [2.0, 2.0]})
        assert "o" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2, 3], {"a": [1.0, 2.0]})


class TestGrowthCharts:
    def test_all_three_charts(self):
        from repro.experiments.curves import growth_charts

        text = growth_charts(mus=(4, 16, 64), nc_mus=(4, 8))
        assert "Theorem 5.1" in text
        assert "Techniques-section traps" in text
        assert "Non-clairvoyant wall" in text

    def test_cli_curves(self, capsys):
        from repro.cli import main

        assert main(["curves"]) == 0
        assert "σ_μ" in capsys.readouterr().out
