"""Metric primitives: bucket edges, gauges, merging, and the
deterministic MetricsListener."""

import pickle

import pytest

from repro import FirstFit, HybridAlgorithm, simulate, uniform_random
from repro.obs import (
    BINS_OPEN_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsListener,
    Timing,
    merge_metrics,
)


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.value == 7 and a.to_dict() == 7


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge()
        for v in (3.0, 1.0, 5.0, 2.0):
            g.set(v)
        assert g.value == 2.0
        assert g.min == 1.0 and g.max == 5.0
        assert g.updates == 4

    def test_unset_gauge_exports_none_bounds(self):
        assert Gauge().to_dict() == {
            "value": 0.0, "min": None, "max": None, "updates": 0,
        }

    def test_merge_is_minmax_exact(self):
        a, b = Gauge(), Gauge()
        a.set(2.0)
        b.set(7.0)
        b.set(1.0)
        a.merge(b)
        assert a.value == 1.0  # last writer (merge order) wins
        assert a.min == 1.0 and a.max == 7.0 and a.updates == 3

    def test_merging_empty_gauge_is_identity(self):
        a = Gauge()
        a.set(4.0)
        a.merge(Gauge())
        assert a.to_dict()["value"] == 4.0 and a.updates == 1


class TestHistogram:
    def test_bucket_edges_are_half_open(self):
        """(lo, hi] semantics: a value exactly on an edge lands below it."""
        h = Histogram((1, 2, 4))
        for x in (0.5, 1, 1.0001, 2, 3, 4, 4.0001, 100):
            h.observe(x)
        # counts: <=1, (1,2], (2,4], >4
        assert h.counts == [2, 2, 2, 2]
        assert h.total == 8

    def test_mean(self):
        h = Histogram((10,))
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0
        assert Histogram((1,)).mean == 0.0

    def test_edges_sorted_and_validated(self):
        assert Histogram((4, 1, 2)).edges == (1, 2, 4)
        with pytest.raises(ValueError):
            Histogram(())

    def test_merge_requires_same_edges(self):
        a, b = Histogram((1, 2)), Histogram((1, 3))
        with pytest.raises(ValueError, match="different edges"):
            a.merge(b)

    def test_merge_is_bucketwise_sum(self):
        a, b = Histogram((1, 2)), Histogram((1, 2))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.counts == [1, 1, 1] and a.total == 3

    def test_to_dict_labels(self):
        h = Histogram((1, 2))
        d = h.to_dict()
        assert list(d["buckets"]) == ["<= 1", "(1, 2]", "> 2"]

    def test_merge_empty_into_empty(self):
        a, b = Histogram((1, 2)), Histogram((1, 2))
        a.merge(b)
        assert a.counts == [0, 0, 0]
        assert a.total == 0 and a.sum == 0.0 and a.mean == 0.0

    def test_merge_empty_into_populated_is_identity(self):
        a, b = Histogram((1, 2)), Histogram((1, 2))
        a.observe(0.5)
        a.observe(1.5)
        before = (list(a.counts), a.total, a.sum)
        a.merge(b)
        assert (list(a.counts), a.total, a.sum) == before
        assert a.mean == 1.0

    def test_merge_populated_into_empty_copies_everything(self):
        a, b = Histogram((1, 2)), Histogram((1, 2))
        b.observe(0.5)
        b.observe(5.0)
        a.merge(b)
        assert a.counts == b.counts and a.counts == [1, 0, 1]
        assert a.total == 2 and a.mean == b.mean

    def test_merge_disjoint_buckets_sums_without_overlap(self):
        # shards that each only touched different buckets must
        # interleave cleanly: no bucket double-counts, mean is exact
        a, b = Histogram((1, 2, 4)), Histogram((1, 2, 4))
        for x in (0.25, 0.75):  # a hits only the underflow bucket
            a.observe(x)
        for x in (3.0, 9.0):  # b hits only (2,4] and overflow
            b.observe(x)
        a.merge(b)
        assert a.counts == [2, 0, 1, 1]
        assert a.total == 4
        assert a.mean == pytest.approx((0.25 + 0.75 + 3.0 + 9.0) / 4)


class TestTiming:
    def test_observe_and_merge(self):
        a, b = Timing(), Timing()
        a.observe(0.002)
        b.observe(0.001)
        b.observe(0.005)
        a.merge(b)
        assert a.count == 3
        assert a.min == 0.001 and a.max == 0.005
        assert a.to_dict()["mean_us"] == pytest.approx(8000 / 3)


class TestMetricsListener:
    def test_counts_and_conservation(self):
        inst = uniform_random(150, 16, seed=1)
        ml = MetricsListener()
        simulate(FirstFit(), inst, listener=ml)
        snap = ml.snapshot()
        c = snap["counters"]
        assert c["arrivals"] == c["departures"] == 150
        assert c["bins_opened"] == c["bins_closed"]
        assert snap["gauges"]["open_bins"]["value"] == 0  # all drained
        assert snap["histograms"]["residual_at_placement"]["total"] == 150
        assert snap["histograms"]["bin_occupancy"]["total"] == c["bins_closed"]

    def test_bins_open_histogram_edges(self):
        assert MetricsListener().bins_open_dist.edges == BINS_OPEN_EDGES

    def test_merge_two_shards(self):
        a, b = MetricsListener(), MetricsListener()
        simulate(FirstFit(), uniform_random(60, 8, seed=2), listener=a)
        simulate(FirstFit(), uniform_random(40, 8, seed=3), listener=b)
        total_bins = a.bins_opened.value + b.bins_opened.value
        a.merge(b)
        assert a.arrivals.value == 100
        assert a.bins_opened.value == total_bins
        assert a.bin_lifetime.total == total_bins

    def test_merge_metrics_helper(self):
        parts = []
        for seed in (4, 5, 6):
            ml = MetricsListener()
            simulate(HybridAlgorithm(), uniform_random(30, 8, seed=seed),
                     listener=ml)
            parts.append(ml)
        merged = merge_metrics(parts)
        assert isinstance(merged, MetricsListener)
        assert merged.arrivals.value == 90
        assert merge_metrics([]) is None
        into = MetricsListener()
        assert merge_metrics(parts, into=into) is into

    def test_pickles(self):
        ml = MetricsListener()
        simulate(FirstFit(), uniform_random(40, 8, seed=7), listener=ml)
        clone = pickle.loads(pickle.dumps(ml))
        assert clone.snapshot() == ml.snapshot()

    def test_snapshot_extra(self):
        snap = MetricsListener().snapshot(extra={"cost": 1.5})
        assert snap["cost"] == 1.5
