"""Unit tests for the continuous profiling plane (repro.obs.prof):
the statistical stack sampler, the flamegraph exporters, and the
trace critical-path analytics."""

import json
import threading
import time

import pytest

from repro.obs.prof import (
    DEFAULT_HZ,
    Frame,
    Profile,
    Stack,
    StackSampler,
    analyze_events,
    analyze_trace,
    frame_label,
    merge_profiles,
    render_top,
    to_collapsed,
    to_speedscope,
    top_functions,
    write_speedscope,
)
from repro.obs.trace import TraceEvent


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _profile(stacks, frames, **kw):
    defaults = dict(hz=DEFAULT_HZ, samples=sum(s.count for s in stacks),
                    missed=0, truncated=0, duration_s=1.0)
    defaults.update(kw)
    return Profile(frames=tuple(frames), stacks=tuple(stacks), **defaults)


FRAMES = (
    Frame("main", "/app/main.py", 1),
    Frame("work", "/app/jobs/work.py", 10),
    Frame("leaf", "/app/jobs/work.py", 42),
)

STACKS = (
    Stack("MainThread", (0, 1), 3),
    Stack("MainThread", (0, 1, 2), 5),
    Stack("worker", (0, 2), 2),
)


def _busy_thread(stop):
    while not stop.is_set():
        sum(range(200))


# ---------------------------------------------------------------------- #
# StackSampler
# ---------------------------------------------------------------------- #
class TestStackSampler:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            StackSampler(0.0)
        with pytest.raises(ValueError):
            StackSampler(-5)
        with pytest.raises(ValueError):
            StackSampler(97.0, max_stacks=0)

    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=_busy_thread, args=(stop,), name="busy", daemon=True
        )
        worker.start()
        try:
            sampler = StackSampler(500.0)
            sampler.start()
            time.sleep(0.25)
            profile = sampler.stop()
        finally:
            stop.set()
            worker.join()
        assert profile.samples > 0
        assert profile.total_weight >= profile.samples
        assert "busy" in profile.threads
        names = {
            profile.frames[s.frames[-1]].name
            for s in profile.stacks
            if s.thread == "busy"
        }
        assert "_busy_thread" in names

    def test_stop_is_idempotent_and_sets_profile(self):
        sampler = StackSampler(200.0)
        sampler.start()
        first = sampler.stop()
        second = sampler.stop()
        assert not sampler.running
        assert sampler.profile is second
        assert second.samples == first.samples

    def test_disabled_sampler_is_a_no_op(self):
        sampler = StackSampler(97.0, enabled=False)
        assert sampler.start() is sampler
        assert not sampler.running
        profile = sampler.stop()
        assert profile.samples == 0
        assert profile.stacks == ()

    def test_context_manager(self):
        with StackSampler(200.0) as sampler:
            assert sampler.running
            time.sleep(0.02)
        assert not sampler.running
        assert sampler.profile is not None

    def test_snapshot_while_running_is_safe(self):
        with StackSampler(500.0) as sampler:
            time.sleep(0.05)
            snap = sampler.snapshot()
            assert sampler.running  # snapshot does not stop
        assert snap.duration_s <= sampler.profile.duration_s

    def test_overflow_folds_into_truncated_bucket(self):
        # white-box: saturate the unique-stack budget, then sample a
        # live thread — its new stack must land in (truncated), and
        # total weight must still be conserved
        sampler = StackSampler(97.0, max_stacks=1)
        sampler._counts[("synthetic", (0,))] = 7
        sampler._frames.append(("synthetic_root", "", 0))
        stop = threading.Event()
        worker = threading.Thread(
            target=_busy_thread, args=(stop,), name="busy", daemon=True
        )
        worker.start()
        try:
            time.sleep(0.02)
            sampler._sample()
        finally:
            stop.set()
            worker.join()
        profile = sampler.snapshot()
        assert profile.truncated >= 1
        truncated = [
            s for s in profile.stacks
            if profile.frames[s.frames[-1]].name == "(truncated)"
        ]
        assert truncated
        assert profile.total_weight == 7 + profile.truncated


class TestProfileSerialization:
    def test_round_trip_through_dict(self):
        profile = _profile(STACKS, FRAMES, missed=2, truncated=1)
        assert Profile.from_dict(profile.to_dict()) == profile

    def test_write_read_round_trip(self, tmp_path):
        profile = _profile(STACKS, FRAMES)
        path = profile.write(tmp_path / "p.prof.json")
        assert Profile.read(path) == profile
        # deterministic bytes: rewriting yields the same file
        text = path.read_text()
        profile.write(path)
        assert path.read_text() == text

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            Profile.from_dict({"schema": 99})

    def test_rejects_out_of_range_frame_index(self):
        data = _profile(STACKS, FRAMES).to_dict()
        data["stacks"][0]["frames"] = [17]
        with pytest.raises(ValueError, match="frame table"):
            Profile.from_dict(data)

    def test_stats_summary(self):
        stats = _profile(STACKS, FRAMES, missed=4).stats()
        assert stats["unique_stacks"] == 3
        assert stats["threads"] == 2
        assert stats["missed"] == 4


class TestMergeProfiles:
    def test_merge_reinterns_and_sums(self):
        a = _profile(STACKS, FRAMES)
        # same logical stacks, different frame-table order
        frames_b = (FRAMES[2], FRAMES[0], FRAMES[1])
        b = _profile(
            [Stack("MainThread", (1, 2), 10), Stack("worker", (1, 0), 1)],
            frames_b,
        )
        merged = merge_profiles([a, b])
        assert merged.samples == a.samples + b.samples
        weights = {(s.thread, s.frames): s.count for s in merged.stacks}
        main_chain = next(
            (k for k in weights
             if k[0] == "MainThread" and len(k[1]) == 2), None
        )
        assert weights[main_chain] == 3 + 10  # (main, work) from both
        assert merged.total_weight == a.total_weight + b.total_weight

    def test_merge_empty_is_empty_profile(self):
        merged = merge_profiles([])
        assert merged.samples == 0
        assert merged.stacks == ()


# ---------------------------------------------------------------------- #
# flame exporters
# ---------------------------------------------------------------------- #
class TestFlame:
    def test_frame_label_short_and_escaped(self):
        frame = Frame("run;batch", "/deep/path/mod.py", 7)
        assert frame_label(frame) == "run:batch (mod.py:7)"
        assert frame_label(frame, short=False) == \
            "run:batch (/deep/path/mod.py:7)"
        assert frame_label(Frame("(truncated)", "", 0)) == "(truncated)"

    def test_collapsed_is_sorted_and_weighted(self):
        text = to_collapsed(_profile(STACKS, FRAMES))
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        assert len(lines) == 3
        parsed = {}
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            parsed[stack] = int(count)
        key = "MainThread;main (main.py:1);work (work.py:10);leaf (work.py:42)"
        assert parsed[key] == 5
        assert sum(parsed.values()) == 10

    def test_speedscope_round_trips_and_conserves_weight(self):
        profile = _profile(STACKS, FRAMES)
        scope = to_speedscope(profile, name="unit")
        assert scope == json.loads(json.dumps(scope))
        assert scope["$schema"].startswith("https://www.speedscope.app")
        assert [p["name"] for p in scope["profiles"]] == \
            ["MainThread", "worker"]
        for prof in scope["profiles"]:
            assert prof["type"] == "sampled"
            assert len(prof["samples"]) == len(prof["weights"])
            assert prof["endValue"] == sum(prof["weights"])
        total = sum(sum(p["weights"]) for p in scope["profiles"])
        assert total == profile.total_weight

    def test_write_speedscope(self, tmp_path):
        path = write_speedscope(_profile(STACKS, FRAMES), tmp_path / "s.json")
        scope = json.loads(path.read_text())
        assert scope["shared"]["frames"][0]["name"] == "main"

    def test_top_functions_self_vs_cumulative(self):
        rows = top_functions(_profile(STACKS, FRAMES))
        by_name = {frame.name: (self_w, cum_w)
                   for frame, self_w, cum_w in rows}
        assert by_name["leaf"] == (7, 7)    # leaf of stacks 2 and 3
        assert by_name["work"] == (3, 8)    # leaf once, on-stack twice
        assert by_name["main"] == (0, 10)   # never the leaf, always on
        # sorted by self weight descending
        assert [frame.name for frame, _, _ in rows] == \
            ["leaf", "work", "main"]

    def test_top_functions_count_recursion_once(self):
        frames = (Frame("fib", "fib.py", 1),)
        rows = top_functions(
            _profile([Stack("MainThread", (0, 0, 0), 4)], frames)
        )
        ((frame, self_w, cum_w),) = rows
        assert (self_w, cum_w) == (4, 4)  # once per sample, not per frame

    def test_render_top_table(self):
        text = render_top(_profile(STACKS, FRAMES, missed=3), top=2)
        assert "10 samples at 97 Hz" in text
        assert "3 ticks missed" in text
        assert "leaf" in text and "work" in text
        assert "main" not in text.split("\n", 1)[1]  # cut by top=2

    def test_render_top_empty_profile(self):
        text = render_top(_profile([], []))
        assert "(no samples captured)" in text


# ---------------------------------------------------------------------- #
# critical-path analytics
# ---------------------------------------------------------------------- #
def _span(name, t_ns, dur_ns, depth=0, **fields):
    return TraceEvent(name=name, kind="span", t_ns=t_ns, dur_ns=dur_ns,
                      depth=depth, fields=fields)


def _request_events(trace="t-1", shard=0):
    """One fully-instrumented request with gaps between every phase."""
    base = {"trace": trace}
    return [
        _span("request", 0, 1000, depth=0, op="arrive", shard=shard,
              status="ok", **base),
        _span("req.parse", 0, 100, depth=1, **base),
        _span("req.batch", 150, 180, depth=1, **base),
        _span("req.queue", 350, 100, depth=1, **base),
        _span("req.kernel", 500, 300, depth=1, **base),
        _span("req.write", 850, 100, depth=1, **base),
    ]


class TestCriticalPathRequests:
    def test_attribution_is_exhaustive(self):
        report = analyze_events(_request_events())
        (req,) = report.requests
        assert req.coverage == 1.0
        assert req.attributed_ns == req.dur_ns == 1000
        # gaps got their stable derived names
        names = [s.name for s in req.slices]
        assert names == ["parse", "dispatch", "batch", "handoff", "queue",
                         "dequeue", "kernel", "resolve", "write", "post"]
        derived = {s.name for s in req.slices if s.derived}
        assert derived == {"dispatch", "handoff", "dequeue", "resolve",
                           "post"}

    def test_queueing_delay_is_batch_plus_queue(self):
        (req,) = analyze_events(_request_events()).requests
        assert req.queueing_ns == 180 + 100
        assert 0 < req.instrumented_coverage < 1.0

    def test_children_clip_to_root_window(self):
        events = [
            _span("request", 100, 200, depth=0, trace="t", op="arrive",
                  shard=0, status="ok"),
            # starts before the root and ends after it
            _span("req.kernel", 0, 1000, depth=1, trace="t"),
        ]
        (req,) = analyze_events(events).requests
        assert req.attributed_ns == 200
        assert req.coverage == 1.0

    def test_requests_join_children_on_trace_field(self):
        events = _request_events("t-a", shard=0) + \
            _request_events("t-b", shard=1)
        report = analyze_events(events)
        assert [r.trace for r in report.requests] == ["t-a", "t-b"]
        for req in report.requests:
            assert req.coverage == 1.0
        assert report.phases["kernel"]["count"] == 2

    def test_report_is_deterministic(self):
        events = _request_events("t-a") + _request_events("t-b", shard=1)
        a = json.dumps(analyze_events(events).to_dict(), sort_keys=True)
        b = json.dumps(analyze_events(events).to_dict(), sort_keys=True)
        assert a == b

    def test_render_mentions_phases_and_attribution(self):
        text = analyze_events(_request_events()).render()
        assert "critical-path phases" in text
        assert "queueing delay (batch+queue)" in text
        assert "attribution: 100.0% minimum per-request" in text
        assert "slowest request" in text

    def test_summary_block(self):
        out = analyze_events(_request_events()).to_dict()
        assert out["mode"] == "requests"
        assert out["summary"]["requests"] == 1
        assert out["summary"]["min_coverage"] == 1.0


class TestCriticalPathSpans:
    def _events(self):
        # exit order: children close before their parent
        return [
            _span("feed", 10, 400, depth=1),
            _span("place", 420, 100, depth=1),
            _span("replay", 0, 600, depth=0),
        ]

    def test_forest_reconstruction_and_self_time(self):
        report = analyze_events(self._events())
        assert report.mode == "spans"
        assert report.orphans == 0
        assert report.names["replay"]["self_ns"] == 600 - 400 - 100
        assert report.names["feed"]["total_ns"] == 400

    def test_critical_path_follows_heaviest_child(self):
        report = analyze_events(self._events())
        assert [h["name"] for h in report.critical_path] == \
            ["replay", "feed"]
        assert report.critical_path[0]["depth"] == 0

    def test_non_contained_children_become_orphans(self):
        events = [
            _span("stray", 900, 500, depth=1),  # outside the root window
            _span("root", 0, 600, depth=0),
        ]
        report = analyze_events(events)
        assert report.orphans == 1
        assert report.names["root"]["self_ns"] == 600

    def test_render_spans(self):
        text = analyze_events(self._events()).render()
        assert "self time by span name" in text
        assert "critical path" in text


class TestAnalyzeTrace:
    def test_span_free_file_raises(self, tmp_path):
        path = tmp_path / "flat.jsonl"
        path.write_text(json.dumps(
            {"name": "kernel.place", "t_ns": 1, "dur_ns": 0, "depth": 0}
        ) + "\n")
        with pytest.raises(ValueError, match="no spans"):
            analyze_trace(path)

    def test_file_round_trip_matches_in_memory(self, tmp_path):
        events = _request_events()
        path = tmp_path / "serve.jsonl"
        with open(path, "w") as fh:
            for ev in events:
                fh.write(json.dumps({
                    "name": ev.name, "kind": ev.kind, "t_ns": ev.t_ns,
                    "dur_ns": ev.dur_ns, "depth": ev.depth,
                    "fields": ev.fields,
                }) + "\n")
        from_file = analyze_trace(path)
        in_memory = analyze_events(events, path=str(path))
        assert from_file.to_dict() == in_memory.to_dict()
