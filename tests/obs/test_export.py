"""Exporters: sinks, snapshot summaries, and trace aggregation."""

import json

import pytest

from repro import FirstFit, uniform_random
from repro.engine import Engine, EngineMetrics, iter_instance
from repro.obs import (
    CallbackSink,
    ConsoleSink,
    JSONLSink,
    JSONSink,
    MemorySink,
    MetricsListener,
    Tracer,
    render_summary,
    summarize_trace,
)


@pytest.fixture
def snapshot():
    ml = MetricsListener()
    from repro import simulate

    simulate(FirstFit(), uniform_random(80, 8, seed=1), listener=ml)
    return ml.snapshot()


class TestSinks:
    def test_memory_sink(self, snapshot):
        sink = MemorySink()
        with pytest.raises(LookupError):
            sink.last
        sink.emit(snapshot)
        sink.emit({"counters": {}})
        assert len(sink.snapshots) == 2
        assert sink.last == {"counters": {}}

    def test_json_sink_overwrites(self, tmp_path, snapshot):
        path = tmp_path / "m.json"
        sink = JSONSink(path)
        sink.emit({"counters": {"arrivals": 1}})
        sink.emit(snapshot)
        assert json.loads(path.read_text()) == snapshot

    def test_jsonl_sink_appends(self, tmp_path, snapshot):
        path = tmp_path / "m.jsonl"
        sink = JSONLSink(path)
        sink.emit(snapshot)
        sink.emit(snapshot)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == snapshot

    def test_callback_and_console(self, snapshot):
        import io

        seen = []
        CallbackSink(seen.append).emit(snapshot)
        assert seen == [snapshot]
        buf = io.StringIO()
        ConsoleSink(buf).emit(snapshot)
        assert json.loads(buf.getvalue()) == snapshot


class TestRenderSummary:
    def test_sections_rendered(self, snapshot):
        text = render_summary(snapshot)
        assert "counters:" in text
        assert "arrivals" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "#" in text  # bucket bars

    def test_timings_section(self):
        metrics = EngineMetrics()
        Engine(FirstFit(), metrics=metrics).run(
            iter_instance(uniform_random(40, 8, seed=2))
        )
        text = render_summary(metrics.snapshot())
        assert "timings:" in text
        assert "arrival_latency" in text

    def test_empty_snapshot(self):
        assert render_summary({}) == ""


class TestSummarizeTrace:
    def test_round_trip(self, tmp_path):
        tr = Tracer()
        for _ in range(5):
            tr.event("kernel.place")
        with tr.span("replay"):
            tr.event("kernel.close")
        path = tmp_path / "t.jsonl"
        tr.write_jsonl(path)
        text = summarize_trace(path)
        assert "7 events" in text
        assert "kernel.place" in text and "replay" in text
        # spans sort above zero-duration events (by total duration)
        lines = text.splitlines()
        assert lines.index(
            next(ln for ln in lines if "replay" in ln)
        ) < lines.index(next(ln for ln in lines if "kernel.place" in ln))

    def test_empty_trace_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            summarize_trace(path)

    def test_whitespace_only_trace_raises(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n  \n")
        with pytest.raises(ValueError, match="empty trace"):
            summarize_trace(path)

    def test_bad_line_raises_with_location(self, tmp_path):
        # corruption mid-file is fatal; only a truncated *final* line
        # (a crash mid-write) is tolerated with a warning
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok"}\nnot json\n{"name": "ok"}\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            summarize_trace(path)

    def test_truncated_final_line_warns(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"name": "ok"}\n{"name": "ok", "t_n')
        summary = summarize_trace(path)
        assert "warning: final line 2 is truncated" in summary

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            summarize_trace(tmp_path / "nope.jsonl")
