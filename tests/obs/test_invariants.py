"""The online theory-invariant monitors (repro.obs.invariants)."""

import pytest

from repro import (
    FirstFit,
    HybridAlgorithm,
    aligned_random,
    simulate,
    uniform_random,
)
from repro.engine import Engine
from repro.obs import Tracer
from repro.obs.invariants import (
    RATIO_BOUNDS,
    InvariantMonitor,
    InvariantViolationError,
    ratio_bound_for,
)

from ..conftest import aligned_algorithm_factories, all_algorithm_factories


def run_monitored(factory, instance, *, algorithm=None, **kwargs):
    monitor = InvariantMonitor(
        algorithm=algorithm if algorithm is not None else factory(), **kwargs
    )
    result = simulate(factory(), instance, listener=monitor)
    monitor.finalize()
    return monitor, result


class TestCleanRuns:
    @pytest.mark.parametrize(
        "name,factory", all_algorithm_factories(),
        ids=[n for n, _ in all_algorithm_factories()],
    )
    def test_general_workload_has_no_violations(self, name, factory):
        inst = uniform_random(200, 32, seed=7)
        monitor, result = run_monitored(factory, inst)
        assert monitor.ok, monitor.violations
        assert monitor.checks > 0
        # the independently re-derived cost agrees with the result
        assert monitor.recomputed_cost() == pytest.approx(result.cost)

    @pytest.mark.parametrize(
        "name,factory", aligned_algorithm_factories(),
        ids=[n for n, _ in aligned_algorithm_factories()],
    )
    def test_aligned_workload_has_no_violations(self, name, factory):
        inst = aligned_random(16, 150, seed=3)
        monitor, result = run_monitored(factory, inst)
        assert monitor.ok, monitor.violations
        assert monitor.recomputed_cost() == pytest.approx(result.cost)

    def test_span_and_demand_bracket_cost(self):
        inst = uniform_random(300, 64, seed=11)
        monitor, result = run_monitored(FirstFit, inst)
        assert monitor.span <= result.cost + 1e-6
        assert monitor.demand / monitor.capacity <= result.cost + 1e-6
        st = inst.stats
        assert monitor.span == pytest.approx(st.span)
        assert monitor.demand == pytest.approx(st.demand)
        assert monitor.mu == pytest.approx(st.mu)

    def test_engine_path_finalizes_monitor(self):
        inst = uniform_random(120, 16, seed=5)
        monitor = InvariantMonitor(algorithm="FirstFit")
        engine = Engine(FirstFit(), invariants=monitor)
        for item in inst:
            engine.feed(item)
        summary = engine.finish()
        assert monitor.ok, monitor.violations
        verdicts = monitor.verdicts()
        assert verdicts["finalized"] is True
        assert verdicts["recomputed_cost"] == pytest.approx(summary.cost)

    def test_disjoint_instance_span_equals_cost(self, disjoint_instance):
        monitor, result = run_monitored(FirstFit, disjoint_instance)
        assert monitor.ok
        assert monitor.span == pytest.approx(3.0)
        assert result.cost == pytest.approx(3.0)


class TestRatioBounds:
    def test_registry_names(self):
        assert "HybridAlgorithm" in RATIO_BOUNDS
        assert "CDFF" in RATIO_BOUNDS
        assert ratio_bound_for("FirstFit") is not None
        assert ratio_bound_for("NoSuchAlgorithm") is None
        assert ratio_bound_for(HybridAlgorithm()) is RATIO_BOUNDS["HA"]

    def test_explicit_bound_overrides_algorithm(self):
        monitor = InvariantMonitor(algorithm="FirstFit", bound=lambda mu: 2.0)
        assert monitor.bound(10.0) == 2.0

    def test_violated_bound_is_reported(self):
        # a bound of 0 is unsatisfiable: any positive cost violates it
        inst = uniform_random(50, 8, seed=1)
        monitor = InvariantMonitor(bound=lambda mu: 0.0)
        simulate(FirstFit(), inst, listener=monitor)
        monitor.finalize()
        kinds = {v.invariant for v in monitor.violations}
        assert kinds == {"ratio-bound"}


class TestCorruptionHook:
    def test_cost_corruption_trips_cost_identity(self):
        inst = uniform_random(80, 8, seed=2)
        monitor = InvariantMonitor(algorithm="FirstFit")
        kernel_events = simulate(FirstFit(), inst, listener=monitor)
        monitor._corrupt("cost", 5.0)
        assert monitor.recomputed_cost() != pytest.approx(kernel_events.cost)

    def test_span_corruption_trips_span_cost_at_finalize(self):
        inst = uniform_random(80, 8, seed=2)
        monitor = InvariantMonitor()
        result = simulate(FirstFit(), inst, listener=monitor)
        monitor._corrupt("span", result.cost + 100.0)
        monitor.finalize()
        kinds = {v.invariant for v in monitor.violations}
        assert "span-cost" in kinds

    def test_demand_corruption_trips_demand_cost(self):
        inst = uniform_random(80, 8, seed=2)
        monitor = InvariantMonitor()
        result = simulate(FirstFit(), inst, listener=monitor)
        monitor._corrupt("demand", (result.cost + 50.0) * monitor.capacity)
        monitor.finalize()
        kinds = {v.invariant for v in monitor.violations}
        assert "demand-cost" in kinds

    def test_unknown_corruption_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption kind"):
            InvariantMonitor()._corrupt("nonsense")

    def test_violation_emits_structured_trace_event(self):
        inst = uniform_random(60, 8, seed=4)
        tracer = Tracer(256)
        monitor = InvariantMonitor(tracer=tracer)
        result = simulate(FirstFit(), inst, listener=monitor)
        monitor._corrupt("span", result.cost + 10.0)
        monitor.finalize()
        assert not monitor.ok
        events = [e for e in tracer.events() if e.name == "invariant.violation"]
        assert events, "violation must surface as a trace event"
        fields = events[0].fields
        assert fields["invariant"] == "span-cost"
        assert fields["observed"] > fields["expected"]

    def test_strict_mode_raises(self):
        inst = uniform_random(60, 8, seed=4)
        monitor = InvariantMonitor(strict=True)
        result = simulate(FirstFit(), inst, listener=monitor)
        monitor._corrupt("span", result.cost + 10.0)
        with pytest.raises(InvariantViolationError, match="span-cost"):
            monitor.finalize()

    def test_lenient_mode_records_and_continues(self):
        inst = uniform_random(60, 8, seed=4)
        monitor = InvariantMonitor(strict=False)
        result = simulate(FirstFit(), inst, listener=monitor)
        monitor._corrupt("span", result.cost + 10.0)
        monitor._corrupt("demand", (result.cost + 10.0) * monitor.capacity)
        monitor.finalize()
        assert len(monitor.violations) == 2


class TestVerdicts:
    def test_verdicts_shape_is_json_friendly(self):
        import json

        inst = uniform_random(40, 8, seed=6)
        monitor, result = run_monitored(FirstFit, inst)
        verdicts = monitor.verdicts()
        json.dumps(verdicts)
        assert verdicts["ok"] is True
        assert verdicts["arrivals"] == 40
        assert verdicts["departures"] == 40
        assert verdicts["bins_opened"] == verdicts["bins_closed"]
        assert verdicts["violations"] == []

    def test_finalize_is_idempotent(self):
        inst = uniform_random(40, 8, seed=6)
        monitor = InvariantMonitor()
        result = simulate(FirstFit(), inst, listener=monitor)
        monitor._corrupt("span", result.cost + 1.0)
        first = list(monitor.finalize())
        second = list(monitor.finalize())
        assert first == second  # checks don't re-run / re-append

    def test_empty_run_verdicts(self):
        monitor = InvariantMonitor()
        monitor.finalize()
        verdicts = monitor.verdicts()
        assert verdicts["ok"] is True
        assert verdicts["mu"] is None
        assert verdicts["recomputed_cost"] == 0.0


class TestCheckpointInteraction:
    def test_restored_engine_drops_monitor(self, tmp_path):
        from repro.engine import load_checkpoint, save_checkpoint

        inst = uniform_random(50, 8, seed=9)
        items = list(inst)
        monitor = InvariantMonitor()
        engine = Engine(FirstFit(), invariants=monitor)
        for item in items[:25]:
            engine.feed(item)
        path = tmp_path / "mid.ckpt"
        save_checkpoint(engine, path)
        resumed = load_checkpoint(path)
        assert resumed.invariants is None
        # a fresh monitor attached mid-stream adopts the open-bin state
        # and accrued cost (bind sync), keeps the per-event checks clean,
        # and marks itself partial so the whole-run bounds are skipped
        fresh = InvariantMonitor()
        resumed.invariants = fresh
        resumed.attach_listener(fresh)
        for item in items[25:]:
            resumed.feed(item)
        summary = resumed.finish()
        fresh.finalize()
        assert fresh.ok, fresh.violations
        verdicts = fresh.verdicts()
        assert verdicts["partial"] is True
        assert fresh.recomputed_cost() == pytest.approx(summary.cost)

    def test_from_start_monitor_is_not_partial(self):
        inst = uniform_random(50, 8, seed=9)
        monitor = InvariantMonitor()
        engine = Engine(FirstFit(), invariants=monitor)
        for item in inst:
            engine.feed(item)
        engine.finish()
        assert monitor.ok
        assert monitor.verdicts()["partial"] is False
