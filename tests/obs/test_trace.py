"""Tracer semantics: span nesting, ring truncation, JSONL round-trip,
and the TracingListener's agreement with the kernel's own event log."""

import time

import pytest

from repro import FirstFit, simulate, uniform_random
from repro.core.kernel import PlacementKernel
from repro.engine import Engine, iter_instance
from repro.obs import DEFAULT_CAPACITY, TraceEvent, Tracer, TracingListener, read_trace


class TestSpans:
    def test_event_is_instantaneous(self):
        tr = Tracer()
        tr.event("tick", n=1)
        (ev,) = tr.events()
        assert ev.kind == "event" and ev.dur_ns == 0 and ev.depth == 0
        assert ev.fields == {"n": 1}

    def test_nested_spans_record_depth_and_exit_order(self):
        tr = Tracer()
        with tr.span("outer"):
            assert tr.depth == 1
            with tr.span("inner"):
                assert tr.depth == 2
                tr.event("leaf")
        assert tr.depth == 0
        names = [e.name for e in tr.events()]
        # exit-ordered: children land in the buffer before their parent
        assert names == ["leaf", "inner", "outer"]
        leaf, inner, outer = tr.events()
        assert (leaf.depth, inner.depth, outer.depth) == (2, 1, 0)

    def test_span_containment(self):
        tr = Tracer()
        with tr.span("outer"):
            time.sleep(0.001)
            with tr.span("inner"):
                time.sleep(0.001)
        inner, outer = tr.events()
        assert outer.t_ns <= inner.t_ns
        assert inner.end_ns <= outer.end_ns
        assert inner.dur_ns > 0 and outer.dur_ns >= inner.dur_ns

    def test_span_recorded_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("doomed"):
                raise RuntimeError("boom")
        assert [e.name for e in tr.events()] == ["doomed"]
        assert tr.depth == 0  # stack unwound

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.event("e")
        with tr.span("s"):
            pass
        assert len(tr) == 0 and tr.total == 0 and tr.depth == 0


class TestRingBuffer:
    def test_truncation_keeps_newest_and_counts_dropped(self):
        tr = Tracer(capacity=10)
        for i in range(25):
            tr.event("e", i=i)
        assert len(tr) == 10
        assert tr.total == 25
        assert tr.dropped == 15
        kept = [e.fields["i"] for e in tr.events()]
        assert kept == list(range(15, 25))  # oldest evicted first

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_default_capacity(self):
        assert Tracer().capacity == DEFAULT_CAPACITY

    def test_clear_resets_counters(self):
        tr = Tracer(capacity=4)
        for _ in range(9):
            tr.event("e")
        tr.clear()
        assert len(tr) == 0 and tr.total == 0 and tr.dropped == 0


class TestJsonlRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        tr = Tracer()
        tr.event("a", x=1)
        with tr.span("b", tag="t"):
            tr.event("c")
        path = tmp_path / "trace.jsonl"
        assert tr.write_jsonl(path) == 3
        loaded = read_trace(path)
        assert loaded == tr.events()
        assert all(isinstance(e, TraceEvent) for e in loaded)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "x"}\n\n{"name": "y"}\n')
        loaded = read_trace(path)
        assert [e.name for e in loaded] == ["x", "y"]
        assert loaded[0].kind == "event"  # defaults fill the gaps


class TestTracingListener:
    def test_kernel_events_traced(self, tiny_instance):
        tr = Tracer()
        simulate(FirstFit(), tiny_instance, listener=TracingListener(tr))
        kinds = {e.name for e in tr.events()}
        assert kinds == {
            "kernel.advance",
            "kernel.open",
            "kernel.place",
            "kernel.depart",
            "kernel.close",
        }
        places = [e for e in tr.events() if e.name == "kernel.place"]
        assert len(places) == len(tiny_instance)

    def test_open_close_subsequence_matches_kernel_log(self):
        """The traced open/close events reproduce ON_t exactly."""
        inst = uniform_random(120, 16, seed=3)
        tr = Tracer()
        kernel = PlacementKernel(
            FirstFit(), record_events=True, listener=TracingListener(tr)
        )
        for item in inst:
            kernel.release(item)
        kernel.drain()
        traced = [
            (e.fields["time"], +1 if e.name == "kernel.open" else -1)
            for e in tr.events()
            if e.name in ("kernel.open", "kernel.close")
        ]
        assert traced == kernel.open_count_events

    def test_engine_skips_disabled_tracer(self):
        inst = uniform_random(50, 8, seed=4)
        tr = Tracer(enabled=False)
        eng = Engine(FirstFit(), tracer=tr)
        eng.run(iter_instance(inst))
        # construct-time switch: no listener attached, nothing recorded
        assert tr.total == 0
        assert eng._kernel._listener is eng

    def test_engine_traces_when_enabled(self):
        inst = uniform_random(50, 8, seed=4)
        tr = Tracer()
        eng = Engine(FirstFit(), tracer=tr)
        summary = eng.run(iter_instance(inst))
        places = sum(1 for e in tr.events() if e.name == "kernel.place")
        opens = sum(1 for e in tr.events() if e.name == "kernel.open")
        assert places == summary.items == 50
        assert opens == summary.bins_opened
