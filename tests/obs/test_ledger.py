"""The run ledger and the regression sentinel (repro.obs.ledger)."""

import json

import pytest

from repro import FirstFit, simulate, uniform_random
from repro.obs.invariants import InvariantMonitor
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    LEDGER_ENV,
    Drift,
    LedgerSink,
    RunRecord,
    config_hash,
    diff_records,
    flatten_metrics,
    git_sha,
    parse_tolerances,
    read_baseline,
    read_ledger,
    read_record,
    regress,
    resolve_ledger_dir,
)


def make_record(**overrides):
    base = dict(
        kind="replay",
        algorithm="FirstFit",
        generator="uniform_1k.jsonl",
        config={"capacity": 1.0},
        metrics={"cost": 100.0, "bins": 10},
    )
    base.update(overrides)
    return RunRecord(**base)


class TestResolution:
    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env"))
        assert resolve_ledger_dir(tmp_path / "flag") == tmp_path / "flag"

    def test_env_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env"))
        assert resolve_ledger_dir(None) == tmp_path / "env"

    def test_default(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        assert str(resolve_ledger_dir(None)) == DEFAULT_LEDGER_DIR

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_config_hash_is_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})
        assert config_hash(None) == config_hash({})


class TestRunRecord:
    def test_round_trip(self, tmp_path):
        rec = make_record(seed=7)
        path = rec.write(tmp_path)
        assert path.parent == tmp_path
        assert path.name.startswith("replay-")
        loaded = read_record(path)
        assert loaded.key == rec.key
        assert loaded.metrics == rec.metrics
        assert loaded.seed == 7

    def test_run_id_deterministic_and_content_sensitive(self):
        a, b = make_record(), make_record()
        assert a.run_id == b.run_id
        c = make_record(metrics={"cost": 101.0, "bins": 10})
        assert c.run_id != a.run_id

    def test_key_ignores_metrics_but_not_config(self):
        a = make_record()
        b = make_record(metrics={"cost": 5.0})
        assert a.key == b.key
        c = make_record(config={"capacity": 2.0})
        assert a.key != c.key

    def test_damaged_record_raises_value_error(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("{truncated")
        with pytest.raises(ValueError, match="not a ledger record"):
            read_record(bad)
        bad.write_text('{"no": "kind"}')
        with pytest.raises(ValueError, match="no 'kind' field"):
            read_record(bad)

    def test_read_ledger_skips_baseline_and_sorts(self, tmp_path):
        make_record(algorithm="B").write(tmp_path)
        make_record(algorithm="A").write(tmp_path)
        (tmp_path / "baseline.json").write_text(json.dumps({"records": []}))
        recs = read_ledger(tmp_path)
        assert [r.algorithm for r in recs] == ["A", "B"]

    def test_read_ledger_missing_dir_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "nope") == []

    def test_read_baseline_both_shapes(self, tmp_path):
        rec = make_record()
        as_list = tmp_path / "list.json"
        as_list.write_text(json.dumps([rec.to_dict()]))
        as_dict = tmp_path / "dict.json"
        as_dict.write_text(json.dumps({"records": [rec.to_dict()]}))
        assert read_baseline(as_list)[0].key == rec.key
        assert read_baseline(as_dict)[0].key == rec.key
        bad = tmp_path / "bad.json"
        bad.write_text('"just a string"')
        with pytest.raises(ValueError, match="list of records"):
            read_baseline(bad)


class TestLedgerSink:
    def test_emit_writes_record_with_provenance(self, tmp_path):
        sink = LedgerSink(
            kind="simulate",
            algorithm="FirstFit",
            generator="uniform",
            config={"n": 10},
            seed=3,
            ledger_dir=tmp_path,
        )
        sink.emit({"cost": 12.5})
        assert sink.last_path is not None and sink.last_path.exists()
        rec = read_record(sink.last_path)
        assert rec.kind == "simulate"
        assert rec.metrics == {"cost": 12.5}
        assert rec.seed == 3
        assert rec.wall_s is not None and rec.wall_s >= 0
        assert rec.created_unix is not None

    def test_emit_attaches_invariant_verdicts(self, tmp_path):
        inst = uniform_random(50, 8, seed=1)
        monitor = InvariantMonitor(algorithm="FirstFit")
        result = simulate(FirstFit(), inst, listener=monitor)
        monitor.finalize()
        sink = LedgerSink(
            kind="simulate", algorithm="FirstFit", generator="uniform",
            ledger_dir=tmp_path, invariants=monitor,
        )
        sink.emit({"cost": result.cost})
        rec = read_record(sink.last_path)
        assert rec.invariants["ok"] is True
        assert rec.n_violations == 0

    def test_wall_s_override(self, tmp_path):
        sink = LedgerSink(
            kind="bench", algorithm="X", generator="g",
            ledger_dir=tmp_path, wall_s=1.25,
        )
        sink.emit({})
        assert read_record(sink.last_path).wall_s == 1.25


class TestFlattenAndDiff:
    def test_flatten_drops_nondeterministic_sections(self):
        rec = make_record(
            metrics={"cost": 1.0, "timings": {"place": {"mean_us": 3.0}}},
            wall_s=9.9,
        )
        flat = flatten_metrics(rec)
        assert flat["metrics.cost"] == 1.0
        assert not any(k.startswith("metrics.timings") for k in flat)
        assert "wall_s" not in flat
        assert flat["invariants.n_violations"] == 0.0

    def test_flatten_counts_violations_not_their_bodies(self):
        rec = make_record(
            invariants={"ok": False, "span": 2.0,
                        "violations": [{"invariant": "capacity"}]},
        )
        flat = flatten_metrics(rec)
        assert flat["invariants.n_violations"] == 1.0
        assert flat["invariants.span"] == 2.0
        assert not any("violations." in k for k in flat)

    def test_identical_records_have_zero_drift(self):
        drifts = diff_records(make_record(), make_record())
        assert all(d.ok for d in drifts)
        assert all(d.rel == 0.0 for d in drifts)

    def test_cost_drift_beyond_tolerance_fails(self):
        a = make_record()
        b = make_record(metrics={"cost": 110.0, "bins": 10})
        drifts = {d.metric: d for d in diff_records(a, b)}
        assert not drifts["metrics.cost"].ok
        assert drifts["metrics.cost"].rel == pytest.approx(10 / 110)
        assert drifts["metrics.bins"].ok

    def test_custom_tolerance_pattern(self):
        a = make_record()
        b = make_record(metrics={"cost": 101.0, "bins": 10})
        loose = diff_records(a, b, {"metrics.cost": 0.05})
        assert all(d.ok for d in loose)

    def test_missing_metric_is_infinite_drift(self):
        a = make_record()
        b = make_record(metrics={"cost": 100.0})  # "bins" vanished
        drifts = {d.metric: d for d in diff_records(a, b)}
        assert drifts["metrics.bins"].rel == float("inf")
        assert not drifts["metrics.bins"].ok

    def test_new_violations_always_fail_even_with_loose_tol(self):
        a = make_record(invariants={"ok": True, "violations": []})
        b = make_record(
            invariants={"ok": False, "violations": [{"invariant": "span-cost"}]}
        )
        drifts = {
            d.metric: d
            for d in diff_records(a, b, {"invariants.n_violations": 100.0})
        }
        assert not drifts["invariants.n_violations"].ok

    def test_disappearing_violations_are_tolerated(self):
        a = make_record(
            invariants={"ok": False, "violations": [{"invariant": "x"}]}
        )
        b = make_record(invariants={"ok": True, "violations": []})
        drifts = {d.metric: d for d in diff_records(a, b)}
        assert drifts["invariants.n_violations"].ok

    def test_failing_drifts_sort_first(self):
        a = make_record()
        b = make_record(metrics={"cost": 200.0, "bins": 10})
        drifts = diff_records(a, b)
        assert not drifts[0].ok


class TestRegress:
    def test_matched_clean_records_pass(self):
        report = regress([make_record()], [make_record()])
        assert report.ok
        assert "PASS" in report.render()

    def test_drifted_cost_fails_with_nonempty_failures(self):
        current = make_record(metrics={"cost": 150.0, "bins": 10})
        report = regress([current], [make_record()])
        assert not report.ok
        assert report.failures
        text = report.render()
        assert "FAIL" in text and "metrics.cost" in text

    def test_unmatched_records_never_gate(self):
        baseline = make_record()
        newcomer = make_record(algorithm="BestFit")
        report = regress([newcomer], [baseline])
        assert report.ok  # nothing compared, nothing failed
        assert report.new and report.missing
        text = report.render()
        assert "not gated" in text

    def test_empty_everything_passes(self):
        report = regress([], [])
        assert report.ok
        assert "nothing to compare" in report.render()

    def test_corrupted_run_trips_the_gate(self, tmp_path):
        # end-to-end: a deliberately skewed monitor must fail regress
        inst = uniform_random(60, 8, seed=5)

        def record_for(corrupt):
            monitor = InvariantMonitor(algorithm="FirstFit")
            result = simulate(FirstFit(), inst, listener=monitor)
            if corrupt:
                monitor._corrupt("span", result.cost + 10.0)
            monitor.finalize()
            sink = LedgerSink(
                kind="simulate", algorithm="FirstFit", generator="uniform",
                ledger_dir=tmp_path, invariants=monitor,
            )
            sink.emit({"cost": result.cost})
            return read_record(sink.last_path)

        clean, corrupted = record_for(False), record_for(True)
        report = regress([corrupted], [clean])
        assert not report.ok
        assert any(
            d.metric == "invariants.n_violations" for _, d in report.failures
        )


class TestParseTolerances:
    def test_parses_patterns(self):
        assert parse_tolerances(["metrics.cost=0.01", "x*=2"]) == {
            "metrics.cost": 0.01, "x*": 2.0,
        }

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="PATTERN=REL"):
            parse_tolerances(["nope"])
        with pytest.raises(ValueError, match="not a number"):
            parse_tolerances(["metrics.cost=abc"])

    def test_drift_dataclass_roundtrip(self):
        d = Drift(metric="m", baseline=1.0, current=2.0, rel=0.5, tolerance=0.1)
        assert not d.ok
        assert d.to_dict()["ok"] is False
