"""PhaseProfiler: wall time, RSS, tracemalloc deltas, report rendering."""

import json
import time
import tracemalloc

from repro.obs import PhaseProfiler, ProfileReport, profiled


class TestPhaseProfiler:
    def test_phases_in_execution_order(self):
        prof = PhaseProfiler()
        with prof.phase("one"):
            pass
        with prof.phase("two"):
            pass
        report = prof.report()
        assert [p.name for p in report.phases] == ["one", "two"]

    def test_wall_time_measured(self):
        prof = PhaseProfiler()
        with prof.phase("sleep"):
            time.sleep(0.01)
        (p,) = prof.report().phases
        assert p.wall_s >= 0.009
        assert prof.report().total_wall_s == p.wall_s

    def test_peak_rss_reported_on_posix(self):
        prof = PhaseProfiler()
        with prof.phase("noop"):
            pass
        (p,) = prof.report().phases
        assert p.peak_rss_kb is None or p.peak_rss_kb > 0

    def test_no_tracemalloc_by_default(self):
        prof = PhaseProfiler()
        with prof.phase("noop"):
            pass
        (p,) = prof.report().phases
        assert p.alloc_delta_kb is None and p.alloc_peak_kb is None
        assert not tracemalloc.is_tracing()

    def test_tracemalloc_delta_and_peak(self):
        prof = PhaseProfiler(trace_malloc=True, top_allocations=2)
        with prof.phase("alloc"):
            blob = [bytes(1024) for _ in range(512)]  # ~512 KiB held
        (p,) = prof.report().phases
        assert p.alloc_peak_kb is not None and p.alloc_peak_kb > 256
        assert p.alloc_delta_kb is not None
        assert len(p.top_allocations) <= 2
        assert not tracemalloc.is_tracing()  # stopped what it started
        del blob

    def test_leaves_external_tracemalloc_running(self):
        tracemalloc.start()
        try:
            prof = PhaseProfiler(trace_malloc=True)
            with prof.phase("inner"):
                pass
            assert tracemalloc.is_tracing()  # not ours to stop
        finally:
            tracemalloc.stop()

    def test_nested_phases_both_record_allocations(self):
        # an inner profiler's phase runs inside an outer tracing phase:
        # the inner one must not stop tracemalloc out from under the
        # outer, and both must still report allocation numbers
        outer = PhaseProfiler(trace_malloc=True)
        inner = PhaseProfiler(trace_malloc=True)
        with outer.phase("outer"):
            held = [bytes(1024) for _ in range(128)]
            with inner.phase("inner"):
                nested = [bytes(1024) for _ in range(256)]
            assert tracemalloc.is_tracing()  # inner left it running
        assert not tracemalloc.is_tracing()  # outer stopped what it started
        (po,) = outer.report().phases
        (pi,) = inner.report().phases
        assert pi.alloc_delta_kb is not None and pi.alloc_delta_kb > 128
        assert po.alloc_delta_kb is not None
        # the outer phase spans the inner one, so it holds at least as
        # much net allocation as the inner phase contributed
        assert po.alloc_delta_kb >= pi.alloc_delta_kb
        assert po.alloc_peak_kb is not None and pi.alloc_peak_kb is not None
        del held, nested

    def test_nested_phase_peak_is_reset_per_phase(self):
        # reset_peak() at inner-phase entry: a large allocation freed
        # BEFORE the inner phase must not inflate the inner phase's peak
        outer = PhaseProfiler(trace_malloc=True)
        inner = PhaseProfiler(trace_malloc=True)
        with outer.phase("outer"):
            spike = [bytes(1024) for _ in range(2048)]  # ~2 MiB
            del spike
            with inner.phase("inner"):
                small = [bytes(64) for _ in range(16)]
            del small
        (pi,) = inner.report().phases
        assert pi.alloc_peak_kb is not None
        assert pi.alloc_peak_kb < 1024  # spike happened outside the phase

    def test_nested_sequential_phases_under_one_outer(self):
        outer = PhaseProfiler(trace_malloc=True)
        inner = PhaseProfiler(trace_malloc=True)
        with outer.phase("outer"):
            for name in ("a", "b"):
                with inner.phase(name):
                    pass
        assert not tracemalloc.is_tracing()
        assert [p.name for p in inner.report().phases] == ["a", "b"]
        assert all(
            p.alloc_delta_kb is not None for p in inner.report().phases
        )

    def test_phase_recorded_on_exception(self):
        prof = PhaseProfiler()
        try:
            with prof.phase("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert [p.name for p in prof.report().phases] == ["doomed"]


class TestReport:
    def test_render_and_to_dict(self):
        prof = PhaseProfiler(trace_malloc=True)
        with prof.phase("work"):
            sum(range(1000))
        report = prof.report()
        text = report.render()
        assert "work" in text and "total:" in text
        d = report.to_dict()
        json.dumps(d)  # JSON-serialisable
        assert d["phases"][0]["name"] == "work"
        assert d["total_wall_s"] == report.total_wall_s

    def test_empty_report_renders(self):
        text = ProfileReport(phases=()).render()
        assert "0 phase(s)" in text


def test_profiled_wrapper():
    result, report = profiled(sorted, [3, 1, 2])
    assert result == [1, 2, 3]
    assert report.phases[0].name == "sorted"
