"""Unit tests for instance CSV I/O."""

import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import Instance
from repro.workloads.io import dumps_csv, load_csv, loads_csv, save_csv


class TestRoundTrip:
    def test_simple(self, tiny_instance):
        assert loads_csv(dumps_csv(tiny_instance)) == tiny_instance

    def test_file_round_trip(self, tmp_path, tiny_instance):
        path = tmp_path / "inst.csv"
        save_csv(tiny_instance, path)
        assert load_csv(path) == tiny_instance

    def test_empty(self):
        assert loads_csv(dumps_csv(Instance([]))) == Instance([])

    def test_float_exactness(self):
        inst = Instance.from_tuples([(0.1, 0.30000000000000004, 1 / 3)])
        assert loads_csv(dumps_csv(inst)) == inst

    def test_random_instances(self):
        from repro.workloads.random_general import uniform_random

        for seed in range(3):
            inst = uniform_random(60, 16, seed=seed)
            assert loads_csv(dumps_csv(inst)) == inst

    def test_tie_order_preserved(self):
        inst = Instance.from_tuples([(0, 1, 0.1), (0, 2, 0.2), (0, 3, 0.3)])
        back = loads_csv(dumps_csv(inst))
        assert [it.size for it in back] == [0.1, 0.2, 0.3]


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(InvalidInstanceError):
            loads_csv("a,b,c\n1,2,0.5\n")

    def test_wrong_column_count(self):
        with pytest.raises(InvalidInstanceError):
            loads_csv("arrival,departure,size\n1,2\n")

    def test_non_numeric(self):
        with pytest.raises(InvalidInstanceError):
            loads_csv("arrival,departure,size\n1,2,big\n")

    def test_invalid_item_propagates(self):
        with pytest.raises(Exception):
            loads_csv("arrival,departure,size\n5,2,0.5\n")  # dep < arr
