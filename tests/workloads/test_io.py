"""Unit tests for instance CSV and JSONL I/O."""

import json

import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import Instance
from repro.workloads.io import (
    dump_jsonl,
    dumps_csv,
    dumps_jsonl,
    iter_jsonl,
    load_csv,
    load_jsonl,
    loads_csv,
    loads_jsonl,
    save_csv,
)


class TestRoundTrip:
    def test_simple(self, tiny_instance):
        assert loads_csv(dumps_csv(tiny_instance)) == tiny_instance

    def test_file_round_trip(self, tmp_path, tiny_instance):
        path = tmp_path / "inst.csv"
        save_csv(tiny_instance, path)
        assert load_csv(path) == tiny_instance

    def test_empty(self):
        assert loads_csv(dumps_csv(Instance([]))) == Instance([])

    def test_float_exactness(self):
        inst = Instance.from_tuples([(0.1, 0.30000000000000004, 1 / 3)])
        assert loads_csv(dumps_csv(inst)) == inst

    def test_random_instances(self):
        from repro.workloads.random_general import uniform_random

        for seed in range(3):
            inst = uniform_random(60, 16, seed=seed)
            assert loads_csv(dumps_csv(inst)) == inst

    def test_tie_order_preserved(self):
        inst = Instance.from_tuples([(0, 1, 0.1), (0, 2, 0.2), (0, 3, 0.3)])
        back = loads_csv(dumps_csv(inst))
        assert [it.size for it in back] == [0.1, 0.2, 0.3]


class TestJsonlRoundTrip:
    def test_simple(self, tiny_instance):
        assert loads_jsonl(dumps_jsonl(tiny_instance)) == tiny_instance

    def test_file_round_trip(self, tmp_path, tiny_instance):
        path = tmp_path / "inst.jsonl"
        dump_jsonl(tiny_instance, path)
        assert load_jsonl(path) == tiny_instance

    def test_empty(self):
        assert loads_jsonl(dumps_jsonl(Instance([]))) == Instance([])

    def test_float_exactness(self):
        inst = Instance.from_tuples([(0.1, 0.30000000000000004, 1 / 3)])
        assert loads_jsonl(dumps_jsonl(inst)) == inst

    def test_random_instances(self):
        from repro.workloads.random_general import uniform_random

        for seed in range(3):
            inst = uniform_random(60, 16, seed=seed)
            assert loads_jsonl(dumps_jsonl(inst)) == inst

    def test_tie_order_preserved(self):
        inst = Instance.from_tuples([(0, 1, 0.1), (0, 2, 0.2), (0, 3, 0.3)])
        back = loads_jsonl(dumps_jsonl(inst))
        assert [it.size for it in back] == [0.1, 0.2, 0.3]

    def test_one_object_per_line(self, tiny_instance):
        lines = dumps_jsonl(tiny_instance).splitlines()
        assert len(lines) == len(tiny_instance)
        obj = json.loads(lines[0])
        assert set(obj) == {"arrival", "departure", "size"}

    def test_blank_lines_ignored(self, tiny_instance):
        text = dumps_jsonl(tiny_instance).replace("\n", "\n\n")
        assert loads_jsonl(text) == tiny_instance

    def test_whitespace_only_lines_ignored(self, tiny_instance):
        text = "  \n" + dumps_jsonl(tiny_instance) + "\t\n   \n"
        assert loads_jsonl(text) == tiny_instance

    def test_missing_trailing_newline(self, tiny_instance):
        text = dumps_jsonl(tiny_instance).rstrip("\n")
        assert loads_jsonl(text) == tiny_instance

    def test_csv_jsonl_agree(self, tiny_instance):
        assert loads_jsonl(dumps_jsonl(tiny_instance)) == loads_csv(
            dumps_csv(tiny_instance)
        )


class TestIterJsonl:
    def test_streaming_matches_load(self, tmp_path):
        from repro.workloads.random_general import uniform_random

        inst = uniform_random(50, 8, seed=1)
        path = tmp_path / "t.jsonl"
        dump_jsonl(inst, path)
        assert list(iter_jsonl(path)) == list(load_jsonl(path))

    def test_file_order_not_sorted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"arrival": 5.0, "departure": 6.0, "size": 0.5}\n'
            '{"arrival": 1.0, "departure": 2.0, "size": 0.5}\n'
        )
        arrivals = [it.arrival for it in iter_jsonl(path)]
        assert arrivals == [5.0, 1.0]  # streaming never reorders

    def test_uids_sequential(self, tmp_path, tiny_instance):
        path = tmp_path / "t.jsonl"
        dump_jsonl(tiny_instance, path)
        assert [it.uid for it in iter_jsonl(path)] == list(
            range(len(tiny_instance))
        )

    def test_blank_lines_skipped_without_uid_gaps(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '\n{"arrival": 0.0, "departure": 1.0, "size": 0.5}\n'
            '   \n'
            '{"arrival": 2.0, "departure": 3.0, "size": 0.5}\n\n'
        )
        items = list(iter_jsonl(path))
        assert [it.uid for it in items] == [0, 1]
        assert [it.arrival for it in items] == [0.0, 2.0]

    def test_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"arrival": 0.0, "departure": 1.0, "size": 0.5}\n'
            '{"arrival": 2.0, "departure": 3.0, "size": 0.5}'
        )
        assert len(list(iter_jsonl(path))) == 2


class TestJsonlErrors:
    def test_bad_json(self):
        with pytest.raises(InvalidInstanceError, match="line 1"):
            loads_jsonl("{not json}\n")

    def test_missing_field(self):
        with pytest.raises(InvalidInstanceError, match="size"):
            loads_jsonl('{"arrival": 0.0, "departure": 1.0}\n')

    def test_non_object_line(self):
        with pytest.raises(InvalidInstanceError, match="line 1"):
            loads_jsonl("[1, 2, 0.5]\n")

    def test_non_numeric(self):
        with pytest.raises(InvalidInstanceError):
            loads_jsonl('{"arrival": 0.0, "departure": 1.0, "size": "big"}\n')

    def test_iter_jsonl_bad_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"arrival": 0.0, "departure": 1.0, "size": 0.5}\nnope\n')
        with pytest.raises(InvalidInstanceError, match="line 2"):
            list(iter_jsonl(path))

    def test_invalid_item_reports_line_number(self):
        # departs before it arrives: an Item-level failure that must
        # surface as a line-numbered instance error, not InvalidItemError
        with pytest.raises(InvalidInstanceError, match="line 2"):
            loads_jsonl(
                '{"arrival": 0.0, "departure": 1.0, "size": 0.5}\n'
                '{"arrival": 5.0, "departure": 2.0, "size": 0.5}\n'
            )

    def test_iter_jsonl_invalid_item_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '\n{"arrival": 0.0, "departure": 1.0, "size": 0.0}\n'
        )
        with pytest.raises(InvalidInstanceError, match="line 2"):
            list(iter_jsonl(path))


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(InvalidInstanceError):
            loads_csv("a,b,c\n1,2,0.5\n")

    def test_wrong_column_count(self):
        with pytest.raises(InvalidInstanceError):
            loads_csv("arrival,departure,size\n1,2\n")

    def test_non_numeric(self):
        with pytest.raises(InvalidInstanceError):
            loads_csv("arrival,departure,size\n1,2,big\n")

    def test_invalid_item_reports_line_number(self):
        with pytest.raises(InvalidInstanceError, match="line 2"):
            loads_csv("arrival,departure,size\n5,2,0.5\n")  # dep < arr
