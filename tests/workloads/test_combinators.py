"""Unit + property tests for the workload combinators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.workloads.combinators import (
    overlay,
    periodic,
    perturb_sizes,
    thin,
    truncate,
)
from repro.workloads.random_general import uniform_random


@pytest.fixture
def inst():
    return uniform_random(40, 8, seed=1)


class TestOverlay:
    def test_counts_add(self, inst):
        merged = overlay(inst, inst)
        assert len(merged) == 2 * len(inst)

    def test_demand_adds(self, inst):
        merged = overlay(inst, inst)
        assert math.isclose(merged.demand, 2 * inst.demand, rel_tol=1e-9)

    def test_sorted(self, inst):
        merged = overlay(inst, inst.shifted(3.0))
        arrivals = [it.arrival for it in merged]
        assert arrivals == sorted(arrivals)

    def test_empty_overlay(self):
        assert len(overlay(Instance([]), Instance([]))) == 0


class TestPeriodic:
    def test_repeats(self, inst):
        rep = periodic(inst, period=100.0, repeats=3)
        assert len(rep) == 3 * len(inst)

    def test_disjoint_period_span_multiplies(self, inst):
        extent = max(it.departure for it in inst)
        rep = periodic(inst, period=extent + 10, repeats=3)
        assert math.isclose(rep.span, 3 * inst.span, rel_tol=1e-9)

    def test_invalid_params(self, inst):
        with pytest.raises(ValueError):
            periodic(inst, period=0.0, repeats=2)
        with pytest.raises(ValueError):
            periodic(inst, period=1.0, repeats=0)


class TestPerturbSizes:
    def test_zero_jitter_identity(self, inst):
        assert perturb_sizes(inst, jitter=0.0) == inst

    def test_sizes_stay_valid(self, inst):
        out = perturb_sizes(inst, jitter=0.9, seed=3)
        assert all(0 < it.size <= 1.0 for it in out)

    def test_intervals_unchanged(self, inst):
        out = perturb_sizes(inst, jitter=0.5, seed=2)
        assert [(it.arrival, it.departure) for it in out] == [
            (it.arrival, it.departure) for it in inst
        ]

    def test_deterministic(self, inst):
        assert perturb_sizes(inst, jitter=0.3, seed=5) == perturb_sizes(
            inst, jitter=0.3, seed=5
        )

    def test_invalid_jitter(self, inst):
        with pytest.raises(ValueError):
            perturb_sizes(inst, jitter=1.0)

    def test_defuses_ff_trap(self):
        """The FF trap needs exact fills; size jitter defuses most of it."""
        from repro.algorithms.anyfit import FirstFit
        from repro.core.simulation import simulate
        from repro.offline.optimal import opt_reference
        from repro.workloads.adversarial import ff_trap

        trap = ff_trap(64, pairs=50)
        jittered = perturb_sizes(trap, jitter=0.05, seed=0)
        opt_t = opt_reference(trap, max_exact=8).lower
        opt_j = opt_reference(jittered, max_exact=8).lower
        sharp = simulate(FirstFit(), trap).cost / opt_t
        soft = simulate(FirstFit(), jittered).cost / opt_j
        assert soft < 0.5 * sharp


class TestThin:
    def test_keep_all(self, inst):
        assert len(thin(inst, keep=1.0)) == len(inst)

    def test_keeps_at_least_one(self, inst):
        out = thin(inst, keep=0.0001, seed=1)
        assert len(out) >= 1

    def test_subset(self, inst):
        out = thin(inst, keep=0.5, seed=2)
        originals = {(it.arrival, it.departure, it.size) for it in inst}
        assert all(
            (it.arrival, it.departure, it.size) in originals for it in out
        )

    def test_invalid_keep(self, inst):
        with pytest.raises(ValueError):
            thin(inst, keep=0.0)


class TestTruncate:
    def test_drops_late_items(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (10, 12, 0.5)])
        out = truncate(inst, horizon=5.0)
        assert len(out) == 1

    def test_clips_straddlers(self):
        inst = Instance.from_tuples([(0, 10, 0.5)])
        out = truncate(inst, horizon=4.0)
        assert out[0].departure == 4.0

    def test_noop_beyond_extent(self, inst):
        extent = max(it.departure for it in inst)
        assert truncate(inst, horizon=extent + 1) == Instance(
            [it for it in inst]
        )


@given(
    keep=st.floats(min_value=0.1, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_thin_never_increases_any_stat(keep, seed):
    inst = uniform_random(50, 8, seed=3)
    out = thin(inst, keep=keep, seed=seed)
    assert out.demand <= inst.demand + 1e-9
    assert out.span <= inst.span + 1e-9
    assert len(out) <= len(inst)
