"""Unit tests for the workload generators."""

import math

import pytest

from repro.core.validate import audit
from repro.reductions.alignment import is_aligned
from repro.workloads.adversarial import (
    cbd_trap,
    ff_trap,
    full_adversary_schedule,
    sigma_star,
)
from repro.workloads.aligned import aligned_random, binary_input
from repro.workloads.cloud import batch_jobs, bounded_parallelism, cloud_gaming
from repro.workloads.random_general import poisson_random, staircase, uniform_random


class TestBinaryInput:
    def test_item_count(self):
        # Σ_{i=0}^{n} μ/2^i = 2μ − 1
        for mu in (2, 8, 64):
            assert len(binary_input(mu)) == 2 * mu - 1

    def test_unit_load_at_all_times(self):
        mu = 16
        inst = binary_input(mu)
        for t in (0.0, 3.5, 7.0, 15.9):
            assert math.isclose(inst.load_at(t), 1.0)

    def test_mu_property(self):
        assert binary_input(32).mu == 32.0

    def test_aligned(self):
        assert is_aligned(binary_input(16))

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            binary_input(12)
        with pytest.raises(ValueError):
            binary_input(1)

    def test_custom_size(self):
        inst = binary_input(8, size=0.1)
        assert all(it.size == 0.1 for it in inst)


class TestAlignedRandom:
    def test_aligned(self):
        for seed in range(3):
            assert is_aligned(aligned_random(64, 100, seed=seed))

    def test_deterministic(self):
        a = aligned_random(32, 50, seed=4)
        b = aligned_random(32, 50, seed=4)
        assert a == b

    def test_anchor_pins_horizon(self):
        inst = aligned_random(32, 50, seed=0)
        assert max(it.length for it in inst) == 32.0
        assert inst[0].arrival == 0.0

    def test_item_count(self):
        assert len(aligned_random(16, 77, seed=0)) == 77

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            aligned_random(10, 50)
        with pytest.raises(ValueError):
            aligned_random(16, 0)
        with pytest.raises(ValueError):
            aligned_random(16, 10, horizon=8)

    def test_class_weights(self):
        import numpy as np

        # all weight on class 0: every non-anchor item has length ≤ 1
        inst = aligned_random(
            16, 60, seed=1, class_weights=np.array([1.0, 0, 0, 0, 0])
        )
        lengths = sorted(it.length for it in inst)
        assert lengths[-1] == 16.0  # the anchor
        assert all(l <= 1.0 for l in lengths[:-1])

    def test_class_weights_wrong_size_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            aligned_random(16, 10, class_weights=np.array([1.0, 1.0]))


class TestSigmaStar:
    def test_lengths(self):
        inst = sigma_star(3.0, 16)
        assert [it.length for it in inst] == [1, 2, 4, 8, 16]

    def test_loads(self):
        inst = sigma_star(0.0, 16)
        assert all(math.isclose(it.size, 0.5) for it in inst)

    def test_full_schedule_count(self):
        mu = 8
        inst = full_adversary_schedule(mu)
        assert len(inst) == mu * (int(math.log2(mu)) + 1)


class TestTraps:
    def test_ff_trap_hurts_ff_only(self):
        from repro.algorithms.anyfit import FirstFit
        from repro.algorithms.hybrid import HybridAlgorithm
        from repro.core.simulation import simulate

        inst = ff_trap(64, pairs=50)
        ff = simulate(FirstFit(), inst)
        ha = simulate(HybridAlgorithm(), inst)
        audit(ff)
        audit(ha)
        assert ff.cost > 5 * ha.cost

    def test_ff_trap_validation(self):
        with pytest.raises(ValueError):
            ff_trap(64, pairs=200, eps=0.01)  # pins don't fit one bin

    def test_cbd_trap_hurts_cbd_only(self):
        from repro.algorithms.anyfit import FirstFit
        from repro.algorithms.classify import ClassifyByDuration
        from repro.core.simulation import simulate

        inst = cbd_trap(64)
        ff = simulate(FirstFit(), inst)
        cbd = simulate(ClassifyByDuration(), inst)
        assert cbd.cost > 2 * ff.cost

    def test_cbd_trap_single_bin_opt(self):
        inst = cbd_trap(32)
        assert inst.stats.max_load <= 1.0 + 1e-9


class TestRandomGeneral:
    def test_uniform_mu_pinned(self):
        inst = uniform_random(100, 64, seed=0)
        assert math.isclose(inst.mu, 64.0)

    def test_uniform_deterministic(self):
        assert uniform_random(50, 8, seed=1) == uniform_random(50, 8, seed=1)

    def test_uniform_min_items(self):
        with pytest.raises(ValueError):
            uniform_random(1, 8)

    def test_poisson_runs(self):
        inst = poisson_random(2.0, 16.0, 50.0, seed=3)
        assert len(inst) >= 1
        assert inst.mu <= 16.0 + 1e-9

    def test_staircase(self):
        inst = staircase(16)
        assert [it.length for it in inst] == [1, 2, 4, 8, 16]


class TestCloud:
    def test_cloud_gaming_basic(self):
        inst = cloud_gaming(50.0, seed=0)
        assert len(inst) > 10
        sizes = {it.size for it in inst}
        assert sizes <= {0.125, 0.25, 0.5}

    def test_cloud_gaming_deterministic(self):
        assert cloud_gaming(20.0, seed=5) == cloud_gaming(20.0, seed=5)

    def test_cloud_gaming_bounded_mu(self):
        inst = cloud_gaming(50.0, seed=1, mean_session=1.0, max_session=16.0)
        assert inst.mu <= 16.0 / (1.0 / 8.0) + 1e-6

    def test_batch_jobs(self):
        inst = batch_jobs(5, 10, seed=0)
        assert len(inst) == 50
        # lengths are powers of two up to float noise (arrival+len−arrival)
        for it in inst:
            k = round(math.log2(it.length))
            assert 0 <= k <= 6
            assert math.isclose(it.length, 2.0**k, rel_tol=1e-9)

    def test_bounded_parallelism_uniform_sizes(self):
        g = 5
        inst = bounded_parallelism(g, 40, 16.0, seed=2)
        assert all(math.isclose(it.size, 1 / g) for it in inst)

    def test_bounded_parallelism_invalid_g(self):
        with pytest.raises(ValueError):
            bounded_parallelism(0, 10, 8.0)

    def test_algorithms_run_on_cloud_trace(self):
        from repro.algorithms.hybrid import HybridAlgorithm
        from repro.core.simulation import simulate

        inst = cloud_gaming(30.0, seed=2).normalized()
        res = simulate(HybridAlgorithm(), inst)
        audit(res)
