"""Tests for the `repro-dbp replay` CLI command."""

import json

import pytest

from repro.cli import main
from repro.workloads import dump_jsonl, save_csv, uniform_random


@pytest.fixture
def instance():
    return uniform_random(200, 16, seed=0)


@pytest.fixture
def jsonl_path(tmp_path, instance):
    path = tmp_path / "trace.jsonl"
    dump_jsonl(instance, path)
    return str(path)


@pytest.fixture
def csv_path(tmp_path, instance):
    path = tmp_path / "trace.csv"
    save_csv(instance, path)
    return str(path)


class TestReplay:
    def test_basic(self, jsonl_path, capsys):
        assert main(["replay", jsonl_path, "-a", "FirstFit"]) == 0
        out = capsys.readouterr().out
        assert "FirstFit: cost=" in out
        assert "200 items replayed" in out

    def test_matches_pack_cost(self, jsonl_path, csv_path, capsys):
        assert main(["replay", jsonl_path, "-a", "FirstFit"]) == 0
        replay_out = capsys.readouterr().out
        assert main(["pack", csv_path, "-a", "FirstFit"]) == 0
        pack_out = capsys.readouterr().out
        cost = [l for l in replay_out.splitlines() if "cost=" in l][0]
        cost = cost.split("cost=")[1].split()[0]
        assert f"cost={cost}" in pack_out

    def test_csv_trace(self, csv_path, capsys):
        assert main(["replay", csv_path]) == 0
        assert "HybridAlgorithm" in capsys.readouterr().out

    def test_verify(self, jsonl_path, capsys):
        assert main(["replay", jsonl_path, "--verify"]) == 0
        assert "parity vs simulate(): Δcost=0" in capsys.readouterr().out

    def test_limit(self, jsonl_path, capsys):
        assert main(["replay", jsonl_path, "--limit", "50"]) == 0
        assert "50 items replayed" in capsys.readouterr().out

    def test_metrics_written(self, jsonl_path, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["replay", jsonl_path, "--metrics", str(out)]) == 0
        snap = json.loads(out.read_text())
        assert snap["counters"]["arrivals"] == 200
        assert snap["cost"] > 0  # summary travels in the snapshot

    def test_unknown_algorithm(self, jsonl_path, capsys):
        assert main(["replay", jsonl_path, "-a", "Nope"]) == 1

    def test_checkpoint_and_resume_identical_cost(
        self, jsonl_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "engine.ckpt"
        assert (
            main(
                [
                    "replay", jsonl_path, "-a", "HybridAlgorithm",
                    "--checkpoint-every", "75", "--checkpoint", str(ckpt),
                ]
            )
            == 0
        )
        full_out = capsys.readouterr().out
        assert ckpt.exists()
        assert (
            main(
                ["replay", jsonl_path, "-a", "HybridAlgorithm",
                 "--resume", str(ckpt)]
            )
            == 0
        )
        resume_out = capsys.readouterr().out
        assert "resumed from" in resume_out
        cost_line = [l for l in full_out.splitlines() if "cost=" in l][0]
        assert cost_line in resume_out  # bit-identical summary line

    def test_resume_verify_needs_recording_checkpoint(
        self, jsonl_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "engine.ckpt"
        main(
            ["replay", jsonl_path, "--checkpoint-every", "100",
             "--checkpoint", str(ckpt)]
        )
        capsys.readouterr()
        assert (
            main(["replay", jsonl_path, "--resume", str(ckpt), "--verify"])
            == 1
        )

    def test_no_index_bit_identical_costs_and_counters(
        self, jsonl_path, tmp_path, capsys
    ):
        """The open-bin index is a pure accelerator: costs AND the
        deterministic obs sections must match the linear-scan fallback
        exactly (not just approximately)."""
        m_fast = tmp_path / "fast.json"
        m_slow = tmp_path / "slow.json"
        assert main(["replay", jsonl_path, "--metrics", str(m_fast)]) == 0
        fast_out = capsys.readouterr().out
        assert (
            main(["replay", jsonl_path, "--no-index",
                  "--metrics", str(m_slow)])
            == 0
        )
        slow_out = capsys.readouterr().out
        cost_line = [l for l in fast_out.splitlines() if "cost=" in l][0]
        assert cost_line in slow_out  # bit-identical summary line
        fast = json.loads(m_fast.read_text())
        slow = json.loads(m_slow.read_text())
        # counters+histograms are deterministic by contract; timings are
        # wall-clock and legitimately differ between the two runs
        assert fast["counters"] == slow["counters"]
        assert fast["histograms"] == slow["histograms"]
        assert fast["cost"] == slow["cost"]


class TestReplayObservability:
    def test_trace_written_and_well_formed(self, jsonl_path, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        assert main(["replay", jsonl_path, "--trace", str(out)]) == 0
        assert f"-> {out}" in capsys.readouterr().out
        names = set()
        with out.open() as fh:
            for line in fh:
                rec = json.loads(line)  # every line is valid JSON
                assert {"name", "kind", "t_ns", "dur_ns", "depth"} <= set(rec)
                names.add(rec["name"])
        assert "kernel.place" in names and "kernel.close" in names

    def test_trace_capacity_caps_the_file(self, jsonl_path, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        assert (
            main(["replay", jsonl_path, "--trace", str(out),
                  "--trace-capacity", "64"])
            == 0
        )
        assert "dropped" in capsys.readouterr().out
        assert len(out.read_text().splitlines()) == 64

    def test_profile_report_printed(self, jsonl_path, capsys):
        assert main(["replay", jsonl_path, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "replay" in out and "drain" in out and "total:" in out

    def test_trace_survives_resume(self, jsonl_path, tmp_path, capsys):
        ckpt = tmp_path / "engine.ckpt"
        main(["replay", jsonl_path, "--checkpoint-every", "100",
              "--checkpoint", str(ckpt)])
        capsys.readouterr()
        out = tmp_path / "resumed.jsonl"
        assert (
            main(["replay", jsonl_path, "--resume", str(ckpt),
                  "--trace", str(out)])
            == 0
        )
        assert out.exists() and out.read_text().strip()


class TestObsSummarize:
    def test_summarize_round_trip(self, jsonl_path, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        main(["replay", jsonl_path, "--trace", str(out)])
        capsys.readouterr()
        assert main(["obs", "summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "kernel.place" in text and "events over" in text

    def test_summarize_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "obs summarize:" in capsys.readouterr().err

    def test_summarize_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('not json at all\n{"name": "ok"}\n')
        assert main(["obs", "summarize", str(bad)]) == 1
        assert "not a JSONL trace line" in capsys.readouterr().err
