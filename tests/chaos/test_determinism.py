"""Whole-pipeline determinism: same trace + seed → byte-identical metrics.

Two fully independent ``repro-dbp replay`` runs over the same JSONL
trace, each writing its own ledger, must agree **exactly** on every
deterministic flattened metric (wall-clock/provenance noise excluded
via :data:`NONDETERMINISTIC_PREFIXES`).  This is the regression guard
for the determinism the whole chaos harness leans on: if replay ever
picks up iteration-order or floating-point nondeterminism, this fails
before any chaos oracle gets confused by it.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.ledger import (
    NONDETERMINISTIC_PREFIXES,
    flatten_metrics,
    read_ledger,
)
from repro.workloads import dump_jsonl, uniform_random


def _replay_metrics(trace: str, ledger_dir) -> dict:
    rc = main([
        "replay", trace, "-a", "HybridAlgorithm", "--verify",
        "--ledger-dir", str(ledger_dir),
    ])
    assert rc == 0
    records = read_ledger(ledger_dir)
    assert len(records) == 1
    flat = flatten_metrics(records[0])
    assert flat, "replay must have recorded metrics"
    return flat


def test_replay_twice_is_byte_identical(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    dump_jsonl(uniform_random(500, 24, seed=7), trace)

    first = _replay_metrics(str(trace), tmp_path / "run-a")
    second = _replay_metrics(str(trace), tmp_path / "run-b")
    capsys.readouterr()

    # byte-identical: compare the canonical JSON serialisations, not
    # approx-equal floats — bit-for-bit is the contract
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    # and the filter actually stripped the nondeterministic sections
    assert all(
        not k.startswith(NONDETERMINISTIC_PREFIXES) for k in first
    )
    assert any(k.startswith("metrics.cost") for k in first)
