"""run_chaos end to end: every fault kind, healed and judged by oracles."""

from __future__ import annotations

import json
import time

import pytest

from repro.testkit import (
    FaultPlan,
    NetWindow,
    ShardEvent,
    SimNetPolicy,
    run_chaos,
)


def _assert_clean(report):
    assert report.ok, report.summary()
    assert report.client.abandoned == 0
    assert not report.client.terminal
    assert len(report.client.acked) == report.client.sent == report.plan.n_items


class TestNoFault:
    def test_all_items_ack_first_try(self):
        report = run_chaos(FaultPlan(seed=1, shards=2, n_items=40))
        _assert_clean(report)
        assert report.client.resends == 0
        assert all(r.attempts == 1 for r in report.client.acked)
        assert sum(report.net_faults.values()) == 0

    def test_single_shard(self):
        _assert_clean(run_chaos(FaultPlan(seed=2, shards=1, n_items=30)))

    @pytest.mark.parametrize(
        "algorithm", ["FirstFit", "BestFit", "HybridAlgorithm"]
    )
    def test_parity_across_algorithms(self, algorithm):
        report = run_chaos(
            FaultPlan(seed=3, shards=2, n_items=40, algorithm=algorithm)
        )
        _assert_clean(report)
        for detail in report.verdict.per_shard:
            assert detail["served_cost"] == pytest.approx(
                detail["batch_cost"]
            )
            assert detail["served_max_open"] == detail["batch_max_open"]


class TestCrashRecovery:
    def test_crash_then_explicit_recover(self):
        report = run_chaos(FaultPlan(
            seed=4, shards=2, n_items=60,
            events=[
                ShardEvent(kind="crash", at=0.06, shard=0),
                ShardEvent(kind="recover", at=0.12, shard=0),
            ],
        ))
        _assert_clean(report)
        assert report.client.resends > 0  # the outage was actually felt

    def test_crash_healed_implicitly(self):
        # no recover event: the harness's heal point must revive it
        report = run_chaos(FaultPlan(
            seed=5, shards=2, n_items=60,
            events=[ShardEvent(kind="crash", at=0.06, shard=0)],
        ))
        _assert_clean(report)
        assert any(e.startswith("heal@") for e in report.events_fired)

    def test_mid_batch_crash(self):
        report = run_chaos(FaultPlan(
            seed=6, shards=2, n_items=60, batch_max=4, batch_delay=0.001,
            events=[
                ShardEvent(
                    kind="crash", at=0.04, shard=0, after_applies=2
                ),
                ShardEvent(kind="recover", at=0.14, shard=0),
            ],
        ))
        _assert_clean(report)

    def test_stall_overload_window(self):
        report = run_chaos(FaultPlan(
            seed=7, shards=2, n_items=60, max_queue=8,
            events=[
                ShardEvent(
                    kind="stall", at=0.03, shard=0, duration=0.15
                ),
            ],
        ))
        _assert_clean(report)

    def test_crash_during_stall(self):
        # Regression (found by the 200-schedule sweep, seed 50): a crash
        # landing while the worker is parked in a stall cancels it with a
        # dequeued job in hand; that job is invisible to _fail_queue, and
        # its unanswered futures deadlocked the connection's drain.
        report = run_chaos(FaultPlan(
            seed=50, shards=1, n_items=60,
            events=[
                ShardEvent(kind="stall", at=0.05, shard=0, duration=0.2),
                ShardEvent(kind="crash", at=0.1, shard=0),
            ],
        ))
        _assert_clean(report)

    def test_graceful_restart_under_traffic(self):
        report = run_chaos(FaultPlan(
            seed=8, shards=2, n_items=80,
            events=[ShardEvent(kind="restart", at=0.08)],
        ))
        _assert_clean(report)
        # both senders lost their connection and came back
        assert report.client.reconnects > report.plan.shards


class TestNetworkWindows:
    def test_lossy_window_heals(self):
        report = run_chaos(FaultPlan(
            seed=11, shards=2, n_items=80, timeout=0.05, backoff=0.01,
            net_windows=[NetWindow(
                at=0.02, duration=0.15,
                policy=SimNetPolicy(
                    drop=0.1, delay=0.4, delay_s=0.02, reorder=0.15,
                    truncate=0.05, disconnect=0.05,
                ),
            )],
        ))
        _assert_clean(report)
        assert sum(report.net_faults.values()) > 0
        assert report.client.resends > 0

    def test_total_blackout_window(self):
        report = run_chaos(FaultPlan(
            seed=12, shards=1, n_items=30, timeout=0.05, backoff=0.01,
            net_windows=[NetWindow(
                at=0.02, duration=0.06,
                policy=SimNetPolicy(drop=1.0),
            )],
        ))
        _assert_clean(report)
        assert report.net_faults["frames_dropped"] > 0


class TestDeterminismAndShape:
    def test_same_plan_same_report(self):
        plan = FaultPlan(
            seed=13, shards=2, n_items=50,
            events=[
                ShardEvent(kind="crash", at=0.05, shard=1),
                ShardEvent(kind="recover", at=0.11, shard=1),
            ],
            net_windows=[NetWindow(
                at=0.02, duration=0.08,
                policy=SimNetPolicy(drop=0.1, delay=0.3, delay_s=0.01),
            )],
        )
        first = run_chaos(plan)
        second = run_chaos(plan)
        assert first.to_dict() == second.to_dict()

    def test_report_is_json_serializable(self):
        report = run_chaos(FaultPlan(seed=14, shards=2, n_items=20))
        decoded = json.loads(json.dumps(report.to_dict()))
        assert decoded["ok"] is True
        assert decoded["client"]["acked"] == 20

    def test_no_wall_clock_sleeps(self):
        # ~0.5s of virtual time incl. a long stall must run much faster
        wall0 = time.perf_counter()
        report = run_chaos(FaultPlan(
            seed=15, shards=2, n_items=40,
            events=[ShardEvent(
                kind="stall", at=0.02, shard=0, duration=2.0
            )],
        ))
        wall = time.perf_counter() - wall0
        _assert_clean(report)
        assert report.virtual_duration > 2.0
        assert wall < 10.0

    def test_exactly_once_uid_streams(self):
        report = run_chaos(FaultPlan(
            seed=16, shards=3, n_items=60,
            events=[
                ShardEvent(kind="crash", at=0.03, shard=0),
                ShardEvent(kind="recover", at=0.09, shard=0),
            ],
        ))
        _assert_clean(report)
        for shard in range(3):
            uids = sorted(
                r.uid for r in report.client.acked if r.shard == shard
            )
            assert uids == list(range(len(uids)))


class TestSharedSampler:
    """An injected stack sampler rides across restarts and lands in the
    report; the harness never stops a sampler it does not own mid-plan."""

    def test_sampler_survives_restart_and_reports_stats(self):
        from repro.obs.prof import StackSampler

        sampler = StackSampler(500.0)
        report = run_chaos(
            FaultPlan(
                seed=8, shards=2, n_items=80,
                events=[ShardEvent(kind="restart", at=0.08)],
            ),
            sampler=sampler,
        )
        _assert_clean(report)
        assert not sampler.running  # harness stops it at plan end
        assert report.profile is not None
        assert report.profile["hz"] == 500.0
        assert report.profile["samples"] >= 0
        assert report.to_dict()["profile"] == report.profile

    def test_no_sampler_leaves_profile_empty(self):
        report = run_chaos(FaultPlan(seed=1, shards=1, n_items=20))
        assert report.profile is None
        assert report.to_dict()["profile"] is None
