"""SimNet: in-process transport semantics and per-frame fault injection."""

from __future__ import annotations

import asyncio

import pytest

from repro.testkit import SimNet, SimNetPolicy, sim_run
from repro.testkit.simnet import PERFECT


async def _echo_server(net: SimNet, port: int = 0) -> int:
    """Start a line-echo server; returns its port."""

    async def handler(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                writer.write(b"echo:" + line)
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    handle = await net.start_server(handler, "sim", port)
    return handle.port


class TestPerfectNetwork:
    def test_round_trip_and_fifo(self):
        async def main():
            net = SimNet(seed=1)
            port = await _echo_server(net)
            reader, writer = await net.open_connection("sim", port)
            for i in range(5):
                writer.write(b"m%d\n" % i)
            await writer.drain()
            got = [await reader.readline() for _ in range(5)]
            writer.close()
            return got

        assert sim_run(main()) == [b"echo:m%d\n" % i for i in range(5)]

    def test_port_allocation_and_refusal(self):
        async def main():
            net = SimNet()
            port_a = await _echo_server(net)
            port_b = await _echo_server(net)
            assert port_a != port_b
            with pytest.raises(ConnectionRefusedError):
                await net.open_connection("sim", port_b + 999)
            with pytest.raises(OSError):
                await _echo_server(net, port=port_a)  # already bound
            return True

        assert sim_run(main())

    def test_graceful_close_is_eof_not_reset(self):
        async def main():
            net = SimNet()

            async def handler(reader, writer):
                writer.write(b"hello\n")
                await writer.drain()
                writer.close()

            handle = await net.start_server(handler, "sim", 0)
            reader, writer = await net.open_connection("sim", handle.port)
            assert await reader.readline() == b"hello\n"
            assert await reader.readline() == b""  # EOF, no exception
            return True

        assert sim_run(main())

    def test_listener_close_frees_the_port(self):
        async def main():
            net = SimNet()
            handle = await net.start_server(
                lambda r, w: asyncio.sleep(0), "sim", 0
            )
            port = handle.port
            handle.close()
            with pytest.raises(ConnectionRefusedError):
                await net.open_connection("sim", port)
            # and the port can be bound again (a restart on the same port)
            again = await net.start_server(
                lambda r, w: asyncio.sleep(0), "sim", port
            )
            return again.port == port

        assert sim_run(main())


class TestFaultInjection:
    def test_drop_loses_the_frame(self):
        async def main():
            net = SimNet(seed=7, policy=SimNetPolicy(drop=1.0))
            port = await _echo_server(net)
            reader, writer = await net.open_connection("sim", port)
            writer.write(b"lost\n")
            net.clear_policy()
            writer.write(b"kept\n")
            line = await reader.readline()
            return line, net.frames_dropped

        line, dropped = sim_run(main())
        assert line == b"echo:kept\n"
        assert dropped == 1

    def test_delay_preserves_fifo(self):
        async def main():
            net = SimNet(
                seed=3, policy=SimNetPolicy(delay=1.0, delay_s=0.1)
            )
            port = await _echo_server(net)
            reader, writer = await net.open_connection("sim", port)
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            for i in range(8):
                writer.write(b"m%d\n" % i)
            got = [await reader.readline() for _ in range(8)]
            return got, loop.time() - t0, net.frames_delayed

        got, elapsed, delayed = sim_run(main())
        assert got == [b"echo:m%d\n" % i for i in range(8)]  # order kept
        assert elapsed > 0.0  # latency actually happened (virtual)
        assert delayed == 16  # both directions: 8 requests + 8 echoes

    def test_reorder_lets_later_frames_overtake(self):
        async def main():
            net = SimNet(
                seed=5,
                policy=SimNetPolicy(reorder=1.0, delay_s=0.05),
            )
            port = await _echo_server(net)
            reader, writer = await net.open_connection("sim", port)
            writer.write(b"first\n")
            net.clear_policy()  # second frame sails straight through
            writer.write(b"second\n")
            a = await reader.readline()
            b = await reader.readline()
            return a, b, net.frames_reordered

        a, b, reordered = sim_run(main())
        assert (a, b) == (b"echo:second\n", b"echo:first\n")
        assert reordered == 1

    def test_disconnect_resets_both_directions(self):
        async def main():
            net = SimNet(seed=2, policy=SimNetPolicy(disconnect=1.0))
            port = await _echo_server(net)
            reader, writer = await net.open_connection("sim", port)
            writer.write(b"doomed\n")
            with pytest.raises(ConnectionResetError):
                await reader.readline()
            with pytest.raises(ConnectionResetError):
                await writer.drain()
            return net.connections_reset

        assert sim_run(main()) == 1

    def test_truncate_delivers_prefix_then_dies(self):
        async def main():
            net = SimNet(seed=4)

            got = []

            async def collector(reader, writer):
                try:
                    while True:
                        chunk = await reader.read(64)
                        if not chunk:
                            break
                        got.append(chunk)
                except ConnectionError:
                    got.append(b"<reset>")

            handle = await net.start_server(collector, "sim", 0)
            reader, writer = await net.open_connection("sim", handle.port)
            net.set_policy(SimNetPolicy(truncate=1.0))
            writer.write(b"a-full-frame-that-will-be-cut\n")
            await asyncio.sleep(0.1)
            return b"".join(g for g in got if g != b"<reset>"), got[-1], \
                net.frames_truncated

        prefix, tail, truncated = sim_run(main())
        assert truncated == 1
        assert tail == b"<reset>"  # the peer sees a mid-line death
        assert b"a-full-frame-that-will-be-cut\n".startswith(prefix)
        assert len(prefix) < len(b"a-full-frame-that-will-be-cut\n")

    def test_truncate_mid_readline_raises_not_hangs(self):
        # Regression: reset() while the reader task is runnable (woken by
        # the prefix's feed_data) must still terminate the read — the
        # naive set_exception-only reset left it waiting forever.
        async def main():
            net = SimNet(seed=4)
            port = await _echo_server(net)
            reader, writer = await net.open_connection("sim", port)
            net.set_policy(SimNetPolicy(truncate=1.0))
            writer.write(b"cut-me\n")
            with pytest.raises(
                (ConnectionResetError, asyncio.IncompleteReadError)
            ):
                line = await reader.readline()
                if not line.endswith(b"\n"):  # partial line at EOF
                    raise asyncio.IncompleteReadError(line, None)
            return True

        assert sim_run(main())

    def test_seeded_faults_are_deterministic(self):
        async def run_once():
            net = SimNet(
                seed=123,
                policy=SimNetPolicy(drop=0.3, delay=0.3, delay_s=0.01),
            )
            port = await _echo_server(net)
            reader, writer = await net.open_connection("sim", port)
            for i in range(50):
                writer.write(b"m%d\n" % i)
            await asyncio.sleep(1.0)
            return net.fault_counts()

        first = sim_run(run_once())
        second = sim_run(run_once())
        assert first == second
        assert first["frames_dropped"] > 0

    def test_policy_windows_swap_live(self):
        async def main():
            net = SimNet(seed=9)
            port = await _echo_server(net)
            reader, writer = await net.open_connection("sim", port)
            assert net.policy is PERFECT
            net.set_policy(SimNetPolicy(drop=1.0))
            writer.write(b"gone\n")
            net.clear_policy()
            writer.write(b"back\n")
            return await reader.readline(), net.frames_dropped

        line, dropped = sim_run(main())
        assert line == b"echo:back\n"
        assert dropped == 1


class TestPolicySerialization:
    def test_round_trip(self):
        policy = SimNetPolicy(
            drop=0.1, delay=0.2, delay_s=0.03, reorder=0.4,
            truncate=0.05, disconnect=0.06,
        )
        assert SimNetPolicy.from_dict(policy.to_dict()) == policy

    def test_from_empty_dict_is_perfect(self):
        assert SimNetPolicy.from_dict({}) == SimNetPolicy(delay_s=0.0)
