"""The shrinker: greedy plan minimization and failure artifacts."""

from __future__ import annotations

import json

from repro.testkit import (
    FaultPlan,
    NetWindow,
    ShardEvent,
    SimNetPolicy,
    minimize,
    write_artifact,
)


def _busy_plan() -> FaultPlan:
    return FaultPlan(
        seed=99,
        shards=3,
        n_items=120,
        events=[
            ShardEvent(kind="crash", at=0.1, shard=0),
            ShardEvent(kind="recover", at=0.2, shard=0),
            ShardEvent(kind="stall", at=0.15, shard=1, duration=0.2),
            ShardEvent(kind="restart", at=0.3),
        ],
        net_windows=[
            NetWindow(at=0.05, duration=0.1, policy=SimNetPolicy(drop=0.2)),
            NetWindow(at=0.25, duration=0.1, policy=SimNetPolicy(delay=0.5)),
        ],
    )


class TestMinimize:
    def test_passing_plan_returns_unchanged(self):
        plan = _busy_plan()
        minimal, failures, trials = minimize(
            plan, fails=lambda p: (False, [])
        )
        assert minimal is plan
        assert failures == []
        assert trials == 1

    def test_shrinks_to_the_one_guilty_event(self):
        # failure reproduces iff a stall event is present: the shrinker
        # must strip everything else
        def fails(plan):
            guilty = any(e.kind == "stall" for e in plan.events)
            return guilty, (["stall still present"] if guilty else [])

        minimal, failures, trials = minimize(_busy_plan(), fails=fails)
        assert failures == ["stall still present"]
        assert [e.kind for e in minimal.events] == ["stall"]
        assert minimal.net_windows == []
        assert minimal.n_items == 10  # halved to the floor
        # shards stop at 2: dropping to 1 would drop the stall (shard 1)
        assert minimal.shards == 2
        assert trials > 1

    def test_shortens_durations(self):
        def fails(plan):
            return bool(plan.net_windows), ["window"]

        minimal, _, _ = minimize(_busy_plan(), fails=fails)
        assert len(minimal.net_windows) == 1
        assert minimal.net_windows[0].duration <= 0.02 * 2

    def test_respects_trial_budget(self):
        calls = []

        def fails(plan):
            calls.append(1)
            return True, ["always"]

        minimize(_busy_plan(), fails=fails, max_trials=5)
        assert len(calls) <= 5

    def test_is_deterministic(self):
        def fails(plan):
            return len(plan.events) >= 2, ["two events"]

        a, _, _ = minimize(_busy_plan(), fails=fails)
        b, _, _ = minimize(_busy_plan(), fails=fails)
        assert a.to_dict() == b.to_dict()

    def test_log_receives_progress(self):
        lines = []

        def fails(plan):
            return bool(plan.events), ["events"]

        minimize(_busy_plan(), fails=fails, log=lines.append)
        assert any("shrink: kept" in line for line in lines)

    def test_original_plan_is_not_mutated(self):
        plan = _busy_plan()
        snapshot = plan.to_dict()

        def fails(p):
            return bool(p.events), ["events"]

        minimize(plan, fails=fails)
        assert plan.to_dict() == snapshot


class TestWriteArtifact:
    def test_artifact_is_replayable_json(self, tmp_path):
        plan = _busy_plan()
        minimal, failures, trials = minimize(
            plan,
            fails=lambda p: (bool(p.events), ["an event fails"]),
        )
        path = write_artifact(
            plan, minimal, ["an event fails"],
            ledger_dir=tmp_path,
            minimized_failures=failures, trials=trials,
        )
        assert path.parent == tmp_path / "chaos"
        payload = json.loads(path.read_text())
        assert payload["kind"] == "chaos-failure"
        assert FaultPlan.from_dict(payload["plan"]) == plan
        assert FaultPlan.from_dict(payload["minimized_plan"]) == minimal
        assert payload["shrink_trials"] == trials
        assert "replay" in payload

    def test_filename_carries_seed_and_digest(self, tmp_path):
        plan = _busy_plan()
        path = write_artifact(plan, plan, ["x"], ledger_dir=tmp_path)
        assert f"seed{plan.seed}" in path.name
        # same content, same name: re-writing is idempotent
        again = write_artifact(plan, plan, ["x"], ledger_dir=tmp_path)
        assert again == path
