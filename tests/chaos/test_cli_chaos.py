"""The ``repro-dbp chaos`` subcommand: sweep, replay, minimize, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.testkit import FaultPlan


class TestChaosCommand:
    def test_single_passing_seed_exits_zero(self, capsys):
        assert main(["chaos", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out
        assert "1/1 schedule(s) passed" in out

    def test_schedule_sweep(self, capsys):
        assert main(["chaos", "--schedules", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("[ok]") == 3
        assert "3/3 schedule(s) passed" in out

    def test_dedup_off_fails_and_minimizes(self, tmp_path, capsys):
        rc = main([
            "chaos", "--seed", "19", "--dedup-off", "--minimize",
            "--ledger-dir", str(tmp_path),
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out
        assert "minimized after" in out
        artifacts = list((tmp_path / "chaos").glob("plan-seed19-*.json"))
        assert len(artifacts) == 1
        payload = json.loads(artifacts[0].read_text())
        assert payload["kind"] == "chaos-failure"
        assert payload["minimized_plan"]["disable_dedup"] is True

    def test_replay_artifact_reproduces_failure(self, tmp_path, capsys):
        main([
            "chaos", "--seed", "19", "--dedup-off", "--minimize",
            "--ledger-dir", str(tmp_path),
        ])
        capsys.readouterr()
        artifact = next((tmp_path / "chaos").glob("plan-seed19-*.json"))
        assert main(["chaos", "--replay", str(artifact)]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_replay_bare_plan_file(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(FaultPlan(seed=3, n_items=30).dumps())
        assert main(["chaos", "--replay", str(plan_path)]) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_replay_missing_file(self, tmp_path, capsys):
        rc = main(["chaos", "--replay", str(tmp_path / "nope.json")])
        assert rc == 1
        assert "cannot read" in capsys.readouterr().err

    def test_json_report_written(self, tmp_path, capsys):
        out_path = tmp_path / "chaos.json"
        assert main([
            "chaos", "--seed", "3", "--json", str(out_path)
        ]) == 0
        reports = json.loads(out_path.read_text())
        assert len(reports) == 1
        assert reports[0]["ok"] is True
        assert reports[0]["plan"]["seed"] == 3

    def test_help_mentions_chaos(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--help"])
        assert "fault-injection" in capsys.readouterr().out
