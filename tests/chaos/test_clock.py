"""SimLoop/sim_run: virtual time, determinism, deadlock detection."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.testkit import SimDeadlockError, SimLoop, sim_run


class TestVirtualTime:
    def test_sleep_advances_virtual_not_wall_time(self):
        async def main():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await asyncio.sleep(1000.0)
            return loop.time() - t0

        wall0 = time.perf_counter()
        elapsed = sim_run(main())
        wall = time.perf_counter() - wall0
        assert elapsed == pytest.approx(1000.0)
        assert wall < 5.0  # a 1000s virtual sleep must not block for real

    def test_time_starts_at_zero(self):
        async def main():
            return asyncio.get_running_loop().time()

        assert sim_run(main()) == pytest.approx(0.0)

    def test_call_at_ordering(self):
        fired = []

        async def main():
            loop = asyncio.get_running_loop()
            loop.call_at(0.3, fired.append, "c")
            loop.call_at(0.1, fired.append, "a")
            loop.call_at(0.2, fired.append, "b")
            await asyncio.sleep(0.5)
            return loop.time()

        sim_run(main())
        assert fired == ["a", "b", "c"]

    def test_concurrent_sleepers_interleave_by_deadline(self):
        order = []

        async def sleeper(name, delay):
            await asyncio.sleep(delay)
            order.append((name, asyncio.get_running_loop().time()))

        async def main():
            await asyncio.gather(
                sleeper("slow", 0.3), sleeper("fast", 0.1)
            )

        sim_run(main())
        assert [n for n, _ in order] == ["fast", "slow"]
        assert order[0][1] == pytest.approx(0.1)
        assert order[1][1] == pytest.approx(0.3)

    def test_wait_for_timeout_on_virtual_clock(self):
        async def main():
            forever = asyncio.get_running_loop().create_future()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(forever, 2.0)
            return asyncio.get_running_loop().time()

        assert sim_run(main()) == pytest.approx(2.0)


class TestSimRun:
    def test_returns_coroutine_value(self):
        async def main():
            await asyncio.sleep(0.01)
            return 42

        assert sim_run(main()) == 42

    def test_propagates_exceptions(self):
        async def main():
            await asyncio.sleep(0.01)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            sim_run(main())

    def test_cancels_stragglers_on_return(self):
        cancelled = []

        async def straggler():
            try:
                await asyncio.sleep(10_000.0)
            except asyncio.CancelledError:
                cancelled.append(True)
                raise

        async def main():
            asyncio.get_running_loop().create_task(straggler())
            await asyncio.sleep(0.01)
            return "done"

        assert sim_run(main()) == "done"
        assert cancelled == [True]

    def test_explicit_loop_argument(self):
        loop = SimLoop()

        async def main():
            assert asyncio.get_running_loop() is loop
            await asyncio.sleep(1.0)
            return loop.time()

        assert sim_run(main(), loop=loop) == pytest.approx(1.0)


class TestDeadlockDetection:
    def test_unresolvable_future_raises_not_hangs(self):
        async def main():
            await asyncio.get_running_loop().create_future()

        wall0 = time.perf_counter()
        with pytest.raises(SimDeadlockError):
            sim_run(main())
        assert time.perf_counter() - wall0 < 5.0

    def test_mutually_waiting_tasks_deadlock(self):
        async def main():
            loop = asyncio.get_running_loop()
            a, b = loop.create_future(), loop.create_future()

            async def wait_then_set(wait_on, then_set):
                await wait_on
                then_set.set_result(None)

            await asyncio.gather(
                wait_then_set(a, b), wait_then_set(b, a)
            )

        with pytest.raises(SimDeadlockError):
            sim_run(main())

    def test_timer_guarded_wait_is_not_a_deadlock(self):
        async def main():
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            loop.call_at(0.5, future.set_result, "late")
            return await future

        assert sim_run(main()) == "late"
