"""Telemetry under chaos is a pure function of the fault plan.

The tentpole claim of the telemetry plane: because the tracer is driven
by the :class:`~repro.testkit.clock.SimLoop` virtual clock and the
head-sampler hashes only ``(seed, trace_id)``, two replays of one
FaultPlan must produce **byte-identical** sampled span JSONL and
identical RED counters — even across shard crashes, stalls, and a
graceful restart (the harness threads one ``ServiceTelemetry`` through
every server incarnation).
"""

from __future__ import annotations

import json

from repro.testkit import FaultPlan, generate_plan, run_chaos
from repro.testkit.faults import ShardEvent


def _faulty_plan() -> FaultPlan:
    """Crash + stall + graceful restart, all before the heal point."""
    return FaultPlan(
        seed=11,
        shards=2,
        n_items=60,
        events=[
            ShardEvent(kind="crash", at=0.05, shard=0),
            ShardEvent(kind="recover", at=0.12, shard=0),
            ShardEvent(kind="stall", at=0.15, shard=1, duration=0.05),
            ShardEvent(kind="restart", at=0.22),
        ],
    )


def test_two_replays_agree_byte_for_byte():
    plan = _faulty_plan()
    first = run_chaos(plan, telemetry=True)
    second = run_chaos(plan, telemetry=True)
    assert first.ok and second.ok, (first.failures, second.failures)

    # sampled span JSONL: byte-identical, and non-trivial
    assert first.trace_lines, "the run must have recorded spans"
    assert first.trace_lines == second.trace_lines
    # every line is valid JSON with the span schema
    root_spans = 0
    for line in first.trace_lines:
        ev = json.loads(line)
        assert {"name", "kind", "t_ns", "depth"} <= set(ev)
        if ev["name"] == "request":
            root_spans += 1
            assert ev["depth"] == 0 and ev["fields"]["trace"]
    assert root_spans > 0

    # RED counters: identical, and they saw the injected faults
    assert first.telemetry == second.telemetry
    merged = first.telemetry["merged"]["counters"]
    assert merged["requests"] > 0
    assert merged["faults"] >= 1  # the crash (and stall) were counted
    assert json.dumps(first.telemetry, sort_keys=True) == json.dumps(
        second.telemetry, sort_keys=True
    )


def test_red_counters_survive_graceful_restart():
    plan = _faulty_plan()
    report = run_chaos(plan, telemetry=True)
    assert report.ok, report.failures
    # requests before the restart are still counted after it: the
    # harness-owned telemetry outlives the first server incarnation
    acked = len(report.client.acked)
    assert report.telemetry["merged"]["counters"]["requests"] >= acked
    assert "restart@0.22" in report.events_fired


def test_generated_plans_stay_deterministic_with_telemetry():
    plan = generate_plan(5)
    first = run_chaos(plan, telemetry=True)
    second = run_chaos(plan, telemetry=True)
    assert first.trace_lines == second.trace_lines
    assert first.telemetry == second.telemetry
    # the verdict itself is unchanged by observing the run
    assert first.ok == second.ok == run_chaos(plan).ok


def test_telemetry_off_report_has_no_telemetry():
    report = run_chaos(generate_plan(0))
    assert report.telemetry is None
    assert report.trace_lines == []
    obj = report.to_dict()
    assert obj["telemetry"] is None and obj["trace_lines"] == []
