"""FaultPlan: serialization round-trips, generation, schedule geometry."""

from __future__ import annotations

import pytest

from repro.testkit import FaultPlan, NetWindow, ShardEvent, SimNetPolicy
from repro.testkit import generate_plan


class TestShardEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            ShardEvent(kind="meteor", at=0.1)

    def test_round_trip_with_optionals(self):
        event = ShardEvent(
            kind="crash", at=0.25, shard=2, after_applies=3
        )
        assert ShardEvent.from_dict(event.to_dict()) == event
        stall = ShardEvent(kind="stall", at=0.5, shard=1, duration=0.2)
        assert ShardEvent.from_dict(stall.to_dict()) == stall


class TestFaultPlanSerialization:
    def _rich_plan(self) -> FaultPlan:
        return FaultPlan(
            seed=42,
            shards=3,
            algorithm="BestFit",
            n_items=50,
            disable_dedup=True,
            events=[
                ShardEvent(kind="crash", at=0.1, shard=1, after_applies=2),
                ShardEvent(kind="recover", at=0.2, shard=1),
                ShardEvent(kind="stall", at=0.3, shard=0, duration=0.1),
                ShardEvent(kind="restart", at=0.4),
            ],
            net_windows=[
                NetWindow(
                    at=0.05, duration=0.2,
                    policy=SimNetPolicy(drop=0.1, delay=0.2, delay_s=0.01),
                ),
            ],
        )

    def test_dict_round_trip(self):
        plan = self._rich_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip(self):
        plan = self._rich_plan()
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_describe_mentions_the_faults(self):
        text = self._rich_plan().describe()
        assert "seed=42" in text
        assert "crash" in text
        assert "DEDUP-DISABLED" in text


class TestGeometry:
    def test_traffic_span_is_per_shard(self):
        plan = FaultPlan(n_items=100, shards=2, send_gap=0.004)
        assert plan.traffic_span == pytest.approx(50 * 0.004)
        solo = FaultPlan(n_items=100, shards=1, send_gap=0.004)
        assert solo.traffic_span == pytest.approx(100 * 0.004)

    def test_heal_at_covers_traffic_and_events(self):
        quiet = FaultPlan(n_items=100, shards=2, send_gap=0.004)
        assert quiet.heal_at > quiet.traffic_span
        late_stall = FaultPlan(
            n_items=10, shards=2, send_gap=0.004,
            events=[ShardEvent(kind="stall", at=5.0, duration=1.0)],
        )
        assert late_stall.heal_at > 6.0

    def test_needs_checkpoint_dir_only_for_restarts(self):
        assert not FaultPlan(
            events=[ShardEvent(kind="crash", at=0.1)]
        ).needs_checkpoint_dir()
        assert FaultPlan(
            events=[ShardEvent(kind="restart", at=0.1)]
        ).needs_checkpoint_dir()


class TestGeneratePlan:
    def test_same_seed_same_plan(self):
        assert generate_plan(7).to_dict() == generate_plan(7).to_dict()

    def test_different_seeds_differ(self):
        dicts = [generate_plan(s).to_dict() for s in range(10)]
        assert len({str(sorted(d.items())) for d in dicts}) > 1

    def test_sweep_produces_fault_diversity(self):
        plans = [generate_plan(s) for s in range(30)]
        kinds = {e.kind for p in plans for e in p.events}
        assert {"crash", "recover", "stall", "restart"} <= kinds
        assert any(p.net_windows for p in plans)
        assert any(
            e.after_applies is not None
            for p in plans for e in p.events
        ), "some crashes should arm the mid-batch countdown"

    def test_events_and_windows_sorted_by_time(self):
        for seed in range(20):
            plan = generate_plan(seed)
            ats = [e.at for e in plan.events]
            assert ats == sorted(ats)
            wats = [w.at for w in plan.net_windows]
            assert wats == sorted(wats)

    def test_overrides_pin_fields(self):
        plan = generate_plan(3, disable_dedup=True, n_items=33)
        assert plan.disable_dedup
        assert plan.n_items == 33

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError, match="no field"):
            generate_plan(3, warp_drive=True)
