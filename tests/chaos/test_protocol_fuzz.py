"""Protocol fuzzing: a storm of malformed frames must never kill anything.

One thousand seeded garbage frames — raw bytes, non-object JSON,
truncated JSON, unknown ops, bad versions, invalid item values, bad
``seq`` types — are thrown at a live :class:`PlacementServer` over
SimNet.  The contract under test:

* every non-blank frame gets exactly **one** structured reply
  (``ok: false`` plus an error code from the protocol's registry);
* frames that carried a well-typed ``seq`` get it **echoed** back, so
  a pipelining client can correlate the rejection;
* the connection survives the whole storm (interleaved pings answer),
  the shard never dies, and fresh connections are still accepted;
* the one fatal input — an oversized line — still gets a structured
  ``bad-request`` reply before the server closes that connection, and
  the listener keeps accepting afterwards.
"""

from __future__ import annotations

import asyncio
import json
import random

from repro.serve.protocol import ERROR_CODES
from repro.serve.server import PlacementServer, ServeConfig
from repro.testkit import SimNet, sim_run

N_FRAMES = 1000


def _fuzz_frames(rng: random.Random, n: int):
    """``n`` seeded malformed frames as ``(wire_bytes, seq_or_None)``."""
    frames = []
    for i in range(n):
        seq = f"fz-{i}"
        kind = rng.randrange(8)
        if kind == 0:  # raw bytes, frequently not even UTF-8
            body = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 40))
            ).replace(b"\n", b"?")
            frames.append((body + b"\n", None))
        elif kind == 1:  # valid JSON that is not an object
            doc = rng.choice([b"42", b'"str"', b"[1,2,3]", b"null", b"true"])
            frames.append((doc + b"\n", None))
        elif kind == 2:  # object with no op
            frames.append((_enc({"seq": seq}), seq))
        elif kind == 3:  # unknown op
            frames.append(
                (_enc({"op": f"na-{rng.randrange(100)}", "seq": seq}), seq)
            )
        elif kind == 4:  # unsupported protocol version
            frames.append((_enc({"op": "ping", "v": 99, "seq": seq}), seq))
        elif kind == 5:  # arrive with invalid item semantics
            bad = rng.choice([
                {"op": "arrive", "seq": seq, "id": f"i{i}", "arrival": 0.0,
                 "departure": 1.0, "size": rng.choice([0.0, -1.0, 2.0])},
                {"op": "arrive", "seq": seq, "id": f"i{i}", "arrival": 5.0,
                 "departure": 1.0, "size": 0.5},  # departs before arriving
                {"op": "arrive", "seq": seq, "arrival": 0.0,
                 "departure": 1.0, "size": 0.5},  # missing id
                {"op": "arrive", "seq": seq, "id": f"i{i}",
                 "arrival": "soon", "departure": 1.0, "size": 0.5},
            ])
            frames.append((_enc(bad), seq))
        elif kind == 6:  # truncated JSON (a strict prefix is never valid)
            full = json.dumps({
                "op": "arrive", "seq": seq, "id": f"i{i}",
                "arrival": 0.0, "departure": 1.0, "size": 0.5,
            })
            frames.append(
                (full[: rng.randrange(1, len(full))].encode() + b"\n", None)
            )
        else:  # seq of an un-echoable type
            frames.append((_enc({"op": "ping", "seq": [1, 2]}), None))
    return frames


def _enc(obj: dict) -> bytes:
    return json.dumps(obj).encode("utf-8") + b"\n"


async def _start_server(net: SimNet) -> PlacementServer:
    server = PlacementServer(
        ServeConfig(shards=1, ledger_dir=None),
        transport=net,
        clock=asyncio.get_running_loop().time,
    )
    await server.start()
    return server


async def _rpc(reader, writer, obj: dict) -> dict:
    writer.write(_enc(obj))
    return json.loads(await reader.readline())


class TestProtocolFuzz:
    def test_thousand_garbage_frames_all_get_structured_errors(self):
        async def main():
            net = SimNet(seed=0)
            server = await _start_server(net)
            reader, writer = await net.open_connection("sim", server.port)
            rng = random.Random("fuzz-proto-0")
            replies = []
            for k, (frame, seq) in enumerate(
                _fuzz_frames(rng, N_FRAMES)
            ):
                writer.write(frame)
                reply = json.loads(await reader.readline())
                replies.append((reply, seq))
                if k % 100 == 99:  # the connection is still conversational
                    pong = await _rpc(
                        reader, writer, {"op": "ping", "seq": f"alive-{k}"}
                    )
                    assert pong["ok"] is True
                    assert pong["seq"] == f"alive-{k}"
            # the storm never landed a single valid request
            stats = await _rpc(reader, writer, {"op": "stats", "seq": "s"})
            writer.close()
            await server.drain()
            return replies, stats

        replies, stats = sim_run(main())
        assert len(replies) == N_FRAMES
        for reply, seq in replies:
            assert reply["ok"] is False
            assert reply["error"] in ERROR_CODES
            assert reply["message"]
            if seq is not None:
                assert reply["seq"] == seq
        assert stats["ok"] is True
        assert stats["totals"]["items"] == 0
        assert stats["totals"]["errors"] >= N_FRAMES

    def test_blank_lines_are_skipped_not_answered(self):
        async def main():
            net = SimNet()
            server = await _start_server(net)
            reader, writer = await net.open_connection("sim", server.port)
            writer.write(b"\n   \n\t\n")
            pong = await _rpc(reader, writer, {"op": "ping", "seq": 1})
            writer.close()
            await server.drain()
            return pong

        pong = sim_run(main())
        assert pong["ok"] is True and pong["seq"] == 1

    def test_oversized_line_gets_reply_then_graceful_close(self):
        async def main():
            net = SimNet()
            server = await _start_server(net)
            reader, writer = await net.open_connection("sim", server.port)
            writer.write(b"x" * 70_000 + b"\n")  # beyond the 64 KiB limit
            reply = json.loads(await reader.readline())
            eof = await reader.readline()
            # the listener (and the shard) survive the rude client
            r2, w2 = await net.open_connection("sim", server.port)
            pong = await _rpc(r2, w2, {"op": "ping", "seq": "after"})
            w2.close()
            await server.drain()
            return reply, eof, pong

        reply, eof, pong = sim_run(main())
        assert reply["ok"] is False
        assert reply["error"] == "bad-request"
        assert "too long" in reply["message"]
        assert eof == b""  # closed gracefully, not reset
        assert pong["ok"] is True and pong["seq"] == "after"

    def test_fuzz_replies_are_deterministic(self):
        async def run_once():
            net = SimNet(seed=1)
            server = await _start_server(net)
            reader, writer = await net.open_connection("sim", server.port)
            replies = []
            for frame, _ in _fuzz_frames(random.Random("fz-d"), 60):
                writer.write(frame)
                replies.append(await reader.readline())
            writer.close()
            await server.drain()
            return replies

        assert sim_run(run_once()) == sim_run(run_once())
