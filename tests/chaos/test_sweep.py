"""The seeded chaos sweep: generated schedules must all pass the oracles.

This is the tier-1 slice of the acceptance sweep (the full 200-schedule
run is a one-liner: ``repro-dbp chaos --schedules 200``).  Each schedule
draws its own shard count, algorithm, fault events, and network windows
from its seed; the oracles require zero accepted-item loss and
bit-identical decision/cost parity on every one.
"""

from __future__ import annotations

from repro.testkit import generate_plan, run_chaos

N_SCHEDULES = 25


def test_seeded_schedule_sweep():
    failures = []
    total_acked = 0
    any_events = any_windows = any_faults_injected = False
    for seed in range(N_SCHEDULES):
        plan = generate_plan(seed)
        report = run_chaos(plan)
        if not report.ok:
            failures.append(report.summary())
        assert report.client.abandoned == 0, report.summary()
        total_acked += len(report.client.acked)
        any_events = any_events or bool(plan.events)
        any_windows = any_windows or bool(plan.net_windows)
        any_faults_injected = (
            any_faults_injected or sum(report.net_faults.values()) > 0
        )
    assert not failures, "\n".join(failures)
    # the sweep must actually exercise faults, not coast on quiet plans
    assert any_events and any_windows and any_faults_injected
    assert total_acked > 0
