"""Acceptance: a deliberately injected dedup bug is caught and shrunk.

``disable_dedup=True`` turns off the shards' ``(client, seq)``
idempotence cache — the seam the harness exists to guard.  Under a
lossy network, a retry of a request whose ack was dropped is then
applied twice; the oracles must catch it (uid-sequence gap /
double-apply / cost divergence), and the shrinker must reduce the
schedule to a smaller plan that still reproduces, written as a
replayable artifact.
"""

from __future__ import annotations

import json

from repro.testkit import (
    FaultPlan,
    generate_plan,
    minimize,
    run_chaos,
    write_artifact,
)

#: a generated schedule whose lossy window provokes lost-ack retries
#: (verified deterministic: string-seeded plan RNG + seeded SimNet)
_BUGGY_SEED = 19


def _buggy_plan() -> FaultPlan:
    return generate_plan(_BUGGY_SEED, disable_dedup=True)


class TestInjectedDedupBug:
    def test_oracle_catches_the_double_apply(self):
        report = run_chaos(_buggy_plan())
        assert not report.ok
        text = " ".join(report.failures)
        assert (
            "uids are not exactly" in text
            or "double-apply" in text
            or "diverges" in text
            or "!=" in text
        ), report.failures

    def test_same_schedule_with_dedup_on_passes(self):
        report = run_chaos(generate_plan(_BUGGY_SEED))
        assert report.ok, report.summary()

    def test_shrinks_to_a_smaller_failing_plan(self):
        plan = _buggy_plan()
        minimal, failures, trials = minimize(plan, max_trials=40)
        assert failures, "minimal plan must still fail"
        assert trials > 1
        # strictly smaller along at least one axis
        assert (
            len(minimal.events) + len(minimal.net_windows)
            < len(plan.events) + len(plan.net_windows)
            or minimal.n_items < plan.n_items
            or minimal.shards < plan.shards
        )
        replay = run_chaos(minimal)
        assert not replay.ok, "minimized plan must reproduce the failure"

    def test_artifact_round_trips_through_replay(self, tmp_path):
        plan = _buggy_plan()
        report = run_chaos(plan)
        path = write_artifact(
            plan, plan, report.failures, ledger_dir=tmp_path
        )
        payload = json.loads(path.read_text())
        resurrected = FaultPlan.from_dict(payload["minimized_plan"])
        assert resurrected.disable_dedup
        again = run_chaos(resurrected)
        assert not again.ok
        assert again.failures == report.failures
