"""Unit tests for competitive-ratio measurement and growth fitting."""

import math

import pytest

from repro.algorithms.anyfit import FirstFit
from repro.analysis.competitive import (
    GrowthFit,
    RatioEstimate,
    best_law,
    fit_growth,
    measure_ratio,
)
from repro.analysis.theory import loglog_mu, sqrt_log_mu
from repro.core.instance import Instance
from repro.offline.bounds import OptSandwich
from repro.workloads.random_general import uniform_random


class TestRatioEstimate:
    def test_exact_opt(self):
        est = RatioEstimate("x", 10.0, OptSandwich(5.0, 5.0))
        assert est.lower == est.upper == 2.0

    def test_interval(self):
        est = RatioEstimate("x", 10.0, OptSandwich(4.0, 5.0))
        assert math.isclose(est.lower, 2.0)
        assert math.isclose(est.upper, 2.5)
        assert est.point == est.upper

    def test_str_forms(self):
        assert "ratio=" in str(RatioEstimate("x", 10.0, OptSandwich(5.0, 5.0)))
        assert "∈" in str(RatioEstimate("x", 10.0, OptSandwich(4.0, 5.0)))

    def test_degenerate_zero_opt(self):
        est = RatioEstimate("x", 10.0, OptSandwich(0.0, 0.0))
        assert est.upper == math.inf


class TestMeasureRatio:
    def test_first_fit_tiny(self, tiny_instance):
        est = measure_ratio(FirstFit, tiny_instance)
        assert est.lower >= 1.0 - 1e-9

    def test_ratio_at_least_one(self):
        for seed in range(3):
            inst = uniform_random(60, 8, seed=seed)
            est = measure_ratio(FirstFit, inst, max_exact=18)
            assert est.upper >= est.lower >= 1.0 - 1e-9


class TestGrowthFit:
    def test_perfect_sqrt_law(self):
        mus = [4, 16, 64, 256, 1024]
        ratios = [3.0 * sqrt_log_mu(m) + 1.0 for m in mus]
        fit = fit_growth(mus, ratios, sqrt_log_mu, name="sqrt")
        assert math.isclose(fit.a, 3.0, abs_tol=1e-9)
        assert math.isclose(fit.b, 1.0, abs_tol=1e-9)
        assert fit.residual < 1e-9

    def test_predict(self):
        fit = GrowthFit("g", 2.0, 1.0, 0.0)
        assert fit.predict(3.0) == 7.0

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_growth([4], [1.0], sqrt_log_mu)

    def test_best_law_identifies_generator(self):
        mus = [4, 16, 64, 256, 1024, 4096]
        ratios = [2.0 * loglog_mu(m) + 0.5 for m in mus]
        best = best_law(
            mus,
            ratios,
            [("sqrt", sqrt_log_mu), ("loglog", loglog_mu)],
        )
        assert best.law == "loglog"
