"""Unit tests for the closed-form bound functions."""

import math

from repro.analysis import theory


class TestGuards:
    def test_log2_safe_floors_at_one(self):
        assert theory.log2_safe(1.0) == 1.0
        assert theory.log2_safe(0.5) == 1.0
        assert theory.log2_safe(8.0) == 3.0

    def test_sqrt_log(self):
        assert math.isclose(theory.sqrt_log_mu(16.0), 2.0)

    def test_loglog_guarded(self):
        assert theory.loglog_mu(2.0) == 1.0
        assert math.isclose(theory.loglog_mu(2.0**16), 4.0)


class TestBounds:
    def test_ha_gn_bound(self):
        assert math.isclose(theory.ha_gn_bound(16.0), 2 + 4 * 2.0)

    def test_ha_upper_bound_structure(self):
        assert math.isclose(theory.ha_upper_bound(16.0), 16 * (2 + 8 * 2.0))

    def test_cdff_binary(self):
        assert math.isclose(theory.cdff_binary_upper_bound(16.0), 2 * 2 + 1)

    def test_cdff_aligned(self):
        assert math.isclose(theory.cdff_aligned_upper_bound(16.0), 8 + 16 * 2)

    def test_rentang(self):
        assert math.isclose(theory.rentang_upper_bound(16.0, 2), 4 + 2 + 3)

    def test_ff_nonclairvoyant(self):
        assert theory.ff_nonclairvoyant_upper_bound(10.0) == 14.0

    def test_lower_bound(self):
        assert math.isclose(theory.lower_bound_sqrt_log(16.0), 2.0 / 8)

    def test_monotonicity(self):
        mus = [2.0**k for k in range(1, 20)]
        for f in (
            theory.sqrt_log_mu,
            theory.loglog_mu,
            theory.ha_upper_bound,
            theory.cdff_aligned_upper_bound,
        ):
            vals = [f(m) for m in mus]
            assert vals == sorted(vals)
