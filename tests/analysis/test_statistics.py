"""Unit tests for the aggregation statistics."""

import math

import numpy as np
import pytest

from repro.analysis.statistics import Summary, bootstrap_ci, summarize


class TestBootstrapCI:
    def test_single_value_degenerate(self):
        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for k in range(30):
            xs = rng.normal(5.0, 1.0, size=25)
            lo, hi = bootstrap_ci(xs, seed=k)
            if lo <= 5.0 <= hi:
                hits += 1
        assert hits >= 24  # ≈95% coverage, generous slack

    def test_interval_ordering(self):
        lo, hi = bootstrap_ci([1.0, 2.0, 3.0, 4.0], seed=1)
        assert lo <= hi
        assert 1.0 <= lo and hi <= 4.0

    def test_deterministic_given_seed(self):
        xs = [1.0, 5.0, 2.0, 4.0]
        assert bootstrap_ci(xs, seed=2) == bootstrap_ci(xs, seed=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(3)
        small = rng.normal(0, 1, size=10)
        big = rng.normal(0, 1, size=1000)
        lo_s, hi_s = bootstrap_ci(small, seed=0)
        lo_b, hi_b = bootstrap_ci(big, seed=0)
        assert (hi_b - lo_b) < (hi_s - lo_s)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert math.isclose(s.mean, 2.0)
        assert s.min == 1.0 and s.max == 3.0
        assert math.isclose(s.std, 1.0)

    def test_single_value(self):
        s = summarize([4.0])
        assert s.std == 0.0 and s.ci_low == s.ci_high == 4.0

    def test_str_forms(self):
        assert str(summarize([2.0])) == "2.000"
        assert "[" in str(summarize([1.0, 2.0, 3.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
