"""Unit tests for the binary-string machinery (Section 5.1)."""

import math
import re

import numpy as np
import pytest

from repro.analysis.binary_strings import (
    binary,
    expected_max_zero_run,
    lemma59_bound,
    lsb_zero_run,
    max_zero_run,
    max_zero_run_all,
    sample_max_zero_run,
    sum_max_zero_run,
)


def reference_max0(bits: str) -> int:
    runs = re.findall("0+", bits)
    return max((len(r) for r in runs), default=0)


class TestBinary:
    def test_basic(self):
        assert binary(5, 4) == "0101"
        assert binary(0, 3) == "000"

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            binary(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            binary(-1, 3)


class TestMaxZeroRun:
    def test_all_zeros(self):
        assert max_zero_run("0000") == 4

    def test_all_ones(self):
        assert max_zero_run("1111") == 0

    def test_mixed(self):
        assert max_zero_run("1001000") == 3

    def test_integer_form(self):
        assert max_zero_run(4, 3) == 2  # "100"

    def test_integer_requires_width(self):
        with pytest.raises(ValueError):
            max_zero_run(4)

    def test_invalid_characters(self):
        with pytest.raises(ValueError):
            max_zero_run("10a1")

    def test_matches_regex_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            bits = "".join(rng.choice(["0", "1"], size=12))
            assert max_zero_run(bits) == reference_max0(bits)


class TestLsbZeroRun:
    def test_values(self):
        assert lsb_zero_run(1) == 0
        assert lsb_zero_run(2) == 1
        assert lsb_zero_run(8) == 3
        assert lsb_zero_run(12) == 2

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            lsb_zero_run(0)

    def test_observation3(self):
        """On σ_μ, 1 + lsb_zero_run(t) items arrive at time t > 0."""
        from repro.workloads.aligned import binary_input

        mu = 32
        inst = binary_input(mu)
        arrivals: dict = {}
        for it in inst:
            arrivals[it.arrival] = arrivals.get(it.arrival, 0) + 1
        for t in range(1, mu):
            assert arrivals.get(float(t), 0) == 1 + lsb_zero_run(t)


class TestEnumeration:
    def test_all_strings_small(self):
        vals = max_zero_run_all(3)
        expected = [reference_max0(binary(t, 3)) for t in range(8)]
        assert list(vals) == expected

    def test_expected_matches_mean(self):
        for n in (2, 5, 9):
            assert math.isclose(
                expected_max_zero_run(n), float(max_zero_run_all(n).mean())
            )

    def test_expected_too_large_rejected(self):
        with pytest.raises(ValueError):
            expected_max_zero_run(40)

    def test_sum_identity(self):
        for mu in (2, 8, 64):
            n = int(math.log2(mu))
            brute = sum(reference_max0(binary(t, n)) for t in range(mu))
            assert sum_max_zero_run(mu) == brute

    def test_sum_requires_power_of_two(self):
        with pytest.raises(ValueError):
            sum_max_zero_run(10)

    def test_corollary_510(self):
        """Σ_t max_0(binary(t)) ≤ 2 μ log log μ for μ ≥ 4."""
        for mu in (16, 256, 4096, 2**16):
            n = int(math.log2(mu))
            assert sum_max_zero_run(mu) <= 2 * mu * math.log2(n)


class TestSamplingAndBound:
    def test_sampling_close_to_exact(self):
        n = 12
        samples = sample_max_zero_run(n, 20000, seed=1)
        assert abs(samples.mean() - expected_max_zero_run(n)) < 0.1

    def test_lemma59(self):
        for n in range(2, 22):
            assert expected_max_zero_run(min(n, 20)) <= lemma59_bound(min(n, 20))

    def test_lemma59_degenerate(self):
        assert lemma59_bound(1) == 1.0
