"""Unit tests for the hard-instance search harness."""

import numpy as np
import pytest

from repro.algorithms.anyfit import FirstFit
from repro.algorithms.cdff import CDFF
from repro.core.instance import Instance
from repro.reductions.alignment import is_aligned
from repro.search import (
    InstanceSearch,
    aligned_mutator,
    aligned_sampler,
    certified_ratio,
    general_mutator,
    general_sampler,
)


class TestCertifiedRatio:
    def test_at_least_one(self, tiny_instance):
        assert certified_ratio(FirstFit, tiny_instance) >= 1.0 - 1e-9

    def test_known_value(self):
        # two big items forced apart; OPT also needs two bins → ratio 1
        inst = Instance.from_tuples([(0, 2, 0.9), (0, 2, 0.9)])
        assert abs(certified_ratio(FirstFit, inst) - 1.0) < 1e-9


class TestSamplersAndMutators:
    def test_aligned_sampler_produces_aligned(self):
        rng = np.random.default_rng(0)
        sample = aligned_sampler(32, 30)
        for _ in range(5):
            assert is_aligned(sample(rng))

    def test_aligned_mutator_preserves_alignment(self):
        rng = np.random.default_rng(1)
        inst = aligned_sampler(32, 30)(rng)
        mutate = aligned_mutator(32)
        for _ in range(20):
            inst = mutate(inst, rng)
            assert is_aligned(inst)

    def test_aligned_mutator_keeps_anchor(self):
        rng = np.random.default_rng(2)
        inst = aligned_sampler(16, 10)(rng)
        mutate = aligned_mutator(16)
        for _ in range(30):
            inst = mutate(inst, rng)
            assert inst.mu >= 16.0 / 1.0 - 1e-6 or any(
                it.length >= 8.0 for it in inst
            )

    def test_general_mutator_keeps_mu_anchors(self):
        rng = np.random.default_rng(3)
        inst = general_sampler(64.0, 20)(rng)
        mutate = general_mutator(64.0)
        for _ in range(30):
            inst = mutate(inst, rng)
            lengths = [it.length for it in inst]
            assert max(lengths) >= 64.0 - 1e-6
            assert min(lengths) <= 1.0 + 1e-6


class TestSearch:
    def test_monotone_improvement(self):
        """The search's best score is ≥ the plain sampler's score."""
        rng = np.random.default_rng(4)
        sample = aligned_sampler(16, 20)
        baseline = max(
            certified_ratio(CDFF, sample(rng), max_exact=10) for _ in range(3)
        )
        search = InstanceSearch(
            sample,
            aligned_mutator(16),
            lambda inst: certified_ratio(CDFF, inst, max_exact=10),
        )
        outcome = search.run(restarts=3, steps=15, seed=4)
        assert outcome.score >= baseline - 0.15  # same distribution, hill-climbed

    def test_deterministic_given_seed(self):
        search = InstanceSearch(
            aligned_sampler(16, 15),
            aligned_mutator(16),
            lambda inst: certified_ratio(CDFF, inst, max_exact=10),
        )
        a = search.run(restarts=2, steps=10, seed=7)
        b = search.run(restarts=2, steps=10, seed=7)
        assert a.score == b.score
        assert a.instance == b.instance

    def test_evaluation_budget(self):
        search = InstanceSearch(
            aligned_sampler(16, 10),
            aligned_mutator(16),
            lambda inst: certified_ratio(CDFF, inst, max_exact=8),
        )
        outcome = search.run(restarts=2, steps=10, seed=0)
        assert outcome.evaluations == 2 * (10 + 1)

    def test_patience_early_stop(self):
        search = InstanceSearch(
            aligned_sampler(16, 10),
            aligned_mutator(16),
            lambda inst: 1.0,  # flat objective: never improves
        )
        outcome = search.run(restarts=1, steps=100, seed=0, patience=5)
        assert outcome.evaluations <= 1 + 5 + 1

    def test_objective_maximised_toy(self):
        """On a transparent objective (item count) the search climbs."""
        search = InstanceSearch(
            aligned_sampler(16, 5),
            aligned_mutator(16),
            lambda inst: float(len(inst)),
        )
        outcome = search.run(restarts=1, steps=60, seed=1)
        assert len(outcome.instance) > 5
