"""Tests for the ratio_sweep utility."""

import pytest

from repro.experiments.sweep import ratio_sweep
from repro.workloads.random_general import uniform_random


def workload(mu: int, seed: int):
    return uniform_random(50, mu, seed=seed)


class TestRatioSweep:
    def test_table_shape(self):
        table = ratio_sweep(
            ["FirstFit", "HybridAlgorithm"], workload, mus=(4, 16), seeds=(0, 1)
        )
        assert table.headers == ["mu", "FirstFit", "HybridAlgorithm"]
        assert len(table.rows) == 2
        assert table.rows[0][0] == 4

    def test_cells_have_ci(self):
        table = ratio_sweep(["FirstFit"], workload, mus=(4,), seeds=(0, 1, 2))
        assert "[" in table.rows[0][1]

    def test_single_seed_no_ci(self):
        table = ratio_sweep(["FirstFit"], workload, mus=(4,), seeds=(0,))
        assert "[" not in table.rows[0][1]

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            ratio_sweep(["FirstFit"], workload, mus=(4,), seeds=())

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            ratio_sweep(["Bogus"], workload, mus=(4,), seeds=(0,))

    def test_parallel_matches_serial(self):
        serial = ratio_sweep(
            ["FirstFit"], workload, mus=(4, 16), seeds=(0, 1), workers=1
        )
        par = ratio_sweep(
            ["FirstFit"], workload, mus=(4, 16), seeds=(0, 1), workers=2
        )
        assert serial.rows == par.rows


class TestCLIGroupCoverage:
    def test_every_experiment_in_exactly_one_group(self):
        """The CLI's group map must cover the registry, no dupes, no strays."""
        from repro.cli import _GROUPS
        from repro.experiments import EXPERIMENTS

        listed = [eid for ids in _GROUPS.values() for eid in ids]
        assert len(listed) == len(set(listed)), "duplicate id across groups"
        assert set(listed) == set(EXPERIMENTS), (
            set(listed) ^ set(EXPERIMENTS)
        )
