"""Tests for the deep lemma experiments (small parameterisations)."""

from repro.experiments.lemmas5 import (
    _expected_row,
    lemma35_experiment,
    lemma55_experiment,
    lemma512_experiment,
)


class TestExpectedRow:
    """The Lemma 5.5 row formula on the paper's own example."""

    def test_paper_example(self):
        # "if b_t = 1001000, then item of length 4 will be assigned to b_1^1"
        # b_t = 1 || binary(t) over 7 bits → n = 6, binary(t) = 001000, t = 8
        assert _expected_row(t=8, j=2, n=6) == 1

    def test_bit_one_goes_row_zero(self):
        # t=1, n=3: b_t = 1001 — the length-1 (j=0) and length-8 (j=3)
        # items are at one-bits → row 0
        assert _expected_row(1, 0, 3) == 0
        assert _expected_row(1, 3, 3) == 0

    def test_zero_run_rows(self):
        # t=1, n=3: b_t = 1001: j=1 (bit 0, run of 1 zero then the MSB '1'
        # ... positions: idx=2 → left neighbour idx=1 is '0', idx=0 is '1'
        assert _expected_row(1, 1, 3) == 2
        assert _expected_row(1, 2, 3) == 1

    def test_t_zero(self):
        # b_0 = 1000: lengths 1,2,4 at rows 3,2,1; length 8 at row 0
        assert [_expected_row(0, j, 3) for j in range(4)] == [3, 2, 1, 0]


class TestExperimentsSmall:
    def test_lemma35(self):
        res = lemma35_experiment(mus=(4, 16), seeds=(0,), n_items=80)
        assert res.passed, res.render()

    def test_lemma55(self):
        res = lemma55_experiment(mus=(4, 16, 32))
        assert res.passed, res.render()
        assert all(row[2] == 0 for row in res.rows)

    def test_lemma512(self):
        res = lemma512_experiment(mus=(16, 64), seeds=(0,), n_items=100)
        assert res.passed, res.render()
        # min slack is genuinely positive but not huge (the bound bites)
        assert all(0 <= row[3] < 5 for row in res.rows)
