"""Tests for the Markdown report generator and its CLI command."""

import pytest

from repro.experiments.report import generate_report, run_experiments


class TestRunExperiments:
    def test_subset(self):
        results = run_experiments(["LEM5.9", "FIG2"])
        assert [r.experiment_id for r in results] == ["LEM5.9", "FIG2"]
        assert all(r.passed for r in results)

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiments(["NOPE"])


class TestGenerateReport:
    def test_structure(self, tmp_path):
        out = tmp_path / "report.md"
        text = generate_report(["LEM5.9", "COR5.8"], out_path=out)
        assert out.read_text() == text
        assert text.startswith("# Reproduction report")
        assert "| LEM5.9 |" in text
        assert "| COR5.8 |" in text
        assert "2/2 experiments passed" in text
        assert "```" in text  # tables fenced

    def test_figures_embedded(self):
        text = generate_report(["FIG2"])
        assert "σ_8" in text
        assert "class 3" in text  # the rendered figure itself

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "-o", str(out), "LEM5.9"]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
