"""Tests for the experiment harness (fast, reduced-size parameterisations).

The full-size experiments run in ``benchmarks/``; here each experiment is
exercised with small parameters to verify it runs, passes its own bound
checks, and produces well-formed tables.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    aligned_experiment,
    anyfit_ablation,
    cor34_experiment,
    cor58_experiment,
    dc_experiment,
    figure1_experiment,
    figure2_experiment,
    figure3_experiment,
    format_table,
    general_lower_experiment,
    general_upper_experiment,
    lemma31_experiment,
    lemma33_experiment,
    lemma59_experiment,
    nonclairvoyant_experiment,
    prop53_experiment,
    rows_ablation,
    threshold_ablation,
)


class TestRunner:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_registry_populated(self):
        expected = {
            "T1.GEN.UB", "T1.GEN.LB", "T1.ALIGN.UB", "T1.NC",
            "LEM3.1", "LEM3.3", "COR3.4", "THM4.2",
            "COR5.8", "LEM5.9", "PROP5.3",
            "ABL.THRESH", "ABL.ANYFIT", "ABL.ROWS",
            "FIG1", "FIG2", "FIG3",
        }
        assert expected <= set(EXPERIMENTS)

    def test_render_and_csv(self):
        res = ExperimentResult("X", "t", ["a"], [[1], [2]], ["note"], True)
        assert "PASS" in res.render()
        assert res.to_csv().startswith("a")

    def test_fail_status_rendered(self):
        res = ExperimentResult("X", "t", ["a"], [[1]], [], False)
        assert "FAIL" in res.render()

    def test_csv_quotes_commas_newlines_and_quotes(self):
        # cells with CSV metacharacters must round-trip through a
        # standard reader, not shift columns
        import csv
        import io

        headers = ["name", "note"]
        rows = [
            ["a,b", 'says "hi"'],
            ["multi\nline", 3.5],
        ]
        res = ExperimentResult("X", "t", headers, rows, [], True)
        text = res.to_csv()
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == headers
        assert parsed[1] == ["a,b", 'says "hi"']
        assert parsed[2] == ["multi\nline", "3.5"]

    def test_csv_uses_unix_line_endings(self):
        res = ExperimentResult("X", "t", ["a"], [[1], [2]], [], True)
        text = res.to_csv()
        assert "\r" not in text
        assert text == "a\n1\n2\n"


class TestTable1Small:
    def test_general_upper(self):
        res = general_upper_experiment(mus=(4, 16), seeds=(0,), n_items=80)
        assert res.passed
        assert len(res.rows) == 6  # 2 μ × 3 workloads

    def test_general_lower(self):
        res = general_lower_experiment(mus=(4, 16))
        assert res.passed

    def test_aligned(self):
        res = aligned_experiment(mus=(4, 16), seeds=(0,), n_items=60)
        assert res.passed

    def test_nonclairvoyant(self):
        res = nonclairvoyant_experiment(
            gs=(4, 8), random_mus=(4,), seeds=(0,), n_items=60
        )
        assert res.passed


class TestLemmasSmall:
    def test_lemma31(self):
        assert lemma31_experiment(mus=(4,), seeds=(0,), n_items=60).passed

    def test_lemma33(self):
        assert lemma33_experiment(mus=(4, 16), seeds=(0,), n_items=120).passed

    def test_cor34(self):
        assert cor34_experiment(mus=(4,), seeds=(0, 1), n_items=50).passed

    def test_dc(self):
        assert dc_experiment(mus=(4, 16), seeds=(0,), n_items=80).passed


class TestBinarySmall:
    def test_cor58(self):
        assert cor58_experiment(mus=(2, 8, 32)).passed

    def test_lemma59(self):
        assert lemma59_experiment(ns=(2, 6, 10)).passed

    def test_prop53(self):
        assert prop53_experiment(mus=(4, 64)).passed


class TestAblationsSmall:
    def test_rows(self):
        assert rows_ablation(mus=(16, 64)).passed

    def test_anyfit(self):
        res = anyfit_ablation(mus=(16,), seeds=(0,), n_items=80)
        assert len(res.rows) == 3


class TestFigures:
    def test_fig1(self):
        assert figure1_experiment(mu=8, n_items=30, seed=1).passed

    def test_fig2(self):
        res = figure2_experiment(mu=8)
        assert res.passed and "σ_8" in res.notes[0]

    def test_fig3(self):
        assert figure3_experiment(mu=8).passed


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1.GEN.UB" in out

    def test_run_single(self, capsys):
        from repro.cli import main

        assert main(["run", "LEM5.9"]) == 0
        assert "Lemma 5.9" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        from repro.cli import main

        assert main(["run", "NOPE"]) == 1

    def test_demo(self, capsys):
        from repro.cli import main

        assert main(["demo"]) == 0
        assert "CDFF" in capsys.readouterr().out
