"""Tests for the resource-augmentation experiment."""

from repro.experiments.augmentation import augmentation_experiment


class TestAugmentation:
    def test_passes(self):
        res = augmentation_experiment(
            epsilons=(0.0, 0.05, 0.25), mu=64, pairs=50,
            seeds=(0,), n_items=100,
        )
        assert res.passed, res.render()

    def test_small_eps_collapses_trap(self):
        res = augmentation_experiment(
            epsilons=(0.0, 0.05), mu=64, pairs=50, seeds=(0,), n_items=80
        )
        base = res.rows[0][1]   # ε=0 FF trap ratio
        eased = res.rows[1][1]  # ε=0.05 FF trap ratio
        assert eased < 0.5 * base

    def test_ha_insensitive(self):
        res = augmentation_experiment(
            epsilons=(0.0, 0.25), mu=64, pairs=50, seeds=(0,), n_items=80
        )
        ha0, ha25 = res.rows[0][2], res.rows[1][2]
        assert abs(ha0 - ha25) < 1.0

    def test_capacity_anomaly_documented(self):
        """ε = 1.0 re-arms the trap (capacity-2 exact fills)."""
        res = augmentation_experiment(
            epsilons=(0.0, 0.25, 1.0), mu=64, pairs=50, seeds=(0,), n_items=80
        )
        quarter = res.rows[1][1]
        full = res.rows[2][1]
        assert full > quarter  # the anomaly is real and reproducible
