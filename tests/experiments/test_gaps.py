"""Tests for the NR-gap and adaptivity experiments."""

from repro.experiments.gaps import adaptivity_experiment, nr_gap_experiment


class TestNRGap:
    def test_passes(self):
        res = nr_gap_experiment(n_instances=25, n_items=6, seed=1)
        assert res.passed, res.render()

    def test_gap_bounds(self):
        res = nr_gap_experiment(n_instances=25, n_items=6, seed=2)
        (row,) = res.rows
        samples, mean, p95, worst, bridge = row
        assert samples > 0
        assert 1.0 - 1e-9 <= mean <= worst <= bridge
        # at this scale the bridge is very loose
        assert worst < 2.0


class TestAdaptivity:
    def test_passes(self):
        res = adaptivity_experiment(phases=5, per_phase=25, seed=3)
        assert res.passed, res.render()

    def test_mu_doubles_per_phase(self):
        res = adaptivity_experiment(phases=5, per_phase=25, seed=3)
        mus = [row[1] for row in res.rows]
        assert mus == [2.0**p for p in range(5)]

    def test_ratio_stays_small(self):
        res = adaptivity_experiment(phases=6, per_phase=30, seed=4)
        assert all(row[4] < 3.0 for row in res.rows)


class TestRandomized:
    def test_passes(self):
        from repro.experiments.randomized import randomized_experiment

        res = randomized_experiment(mus=(16, 64), seeds=(0, 1, 2))
        assert res.passed, res.render()
        # every seed was forced: min ratio ≥ theorem floor, floor held
        for row in res.rows:
            assert row[6] is True
            assert row[2] >= row[5]
