"""Tests for the extension experiments (small parameterisations)."""

from repro.experiments.extensions import (
    greedy_experiment,
    open_aligned_experiment,
    shalom_experiment,
)
from repro.experiments.growth import growth_experiment
from repro.experiments.objectives import objectives_experiment


class TestObjectives:
    def test_passes(self):
        res = objectives_experiment(mu=32, k=8)
        assert res.passed
        # both scenarios tie on max-bins and momentary ratio
        spike, trap = res.rows
        assert spike[1] == trap[1]
        assert abs(spike[2] - trap[2]) <= 1.0
        # usage time separates them
        assert trap[4] > 3 * spike[4]


class TestGrowth:
    def test_sweep(self):
        # μ up to 1024 is needed to discriminate log log μ from √log μ
        res = growth_experiment(mus=(4, 16, 64, 256, 1024), nc_mus=(4, 8, 16))
        assert res.passed, res.render()


class TestGreedy:
    def test_passes(self):
        res = greedy_experiment(mus=(16, 64))
        assert res.passed, res.render()


class TestShalom:
    def test_equivalence_exact(self):
        res = shalom_experiment(gs=(2, 4), n_items=80)
        assert res.passed
        assert all(row[3] for row in res.rows)


class TestOpenAligned:
    def test_search_runs(self):
        res = open_aligned_experiment(
            mus=(8, 16), restarts=2, steps=15, n_items=20
        )
        assert res.passed
        # ratios are sane: ≥ 1 and below the Theorem 5.1 constant
        for row in res.rows:
            assert 1.0 - 1e-9 <= row[1] <= row[3] + 8

    def test_registered(self):
        from repro.experiments import EXPERIMENTS

        for eid in ("OPEN.ALIGN", "EXT.GREEDY", "EXT.SHALOM",
                    "OBJ.MOTIVATION", "GROWTH"):
            assert eid in EXPERIMENTS
