"""Unit tests for the Theorem 4.3 adversary."""

import math

import pytest

from repro.adversary.base import realized_instance
from repro.adversary.sqrt_log import SqrtLogAdversary
from repro.algorithms.anyfit import BestFit, FirstFit, NextFit
from repro.algorithms.classify import ClassifyByDuration
from repro.algorithms.hybrid import HybridAlgorithm
from repro.analysis.theory import lower_bound_sqrt_log, sqrt_log_mu
from repro.core.validate import audit
from repro.offline.optimal import opt_reference


class TestConstruction:
    def test_mu_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            SqrtLogAdversary(10)
        with pytest.raises(ValueError):
            SqrtLogAdversary(1)

    def test_target_bins(self):
        assert SqrtLogAdversary(16).target_bins == 2  # ⌈√4⌉
        assert SqrtLogAdversary(512).target_bins == 3  # ⌈√9⌉

    def test_load(self):
        adv = SqrtLogAdversary(16)
        assert math.isclose(adv.load, 0.5)


class TestForcing:
    @pytest.mark.parametrize(
        "factory", [FirstFit, BestFit, NextFit, ClassifyByDuration, HybridAlgorithm]
    )
    def test_forces_target_bins_each_round(self, factory):
        mu = 16
        adv = SqrtLogAdversary(mu)
        out = adv.run(factory())
        audit(out.result)
        prof = out.result.open_bins_profile()
        # at every round time, the algorithm holds ≥ ⌈√log μ⌉ bins
        for t in range(mu):
            assert prof(float(t)) >= adv.target_bins

    def test_online_cost_floor(self):
        mu = 64
        adv = SqrtLogAdversary(mu)
        out = adv.run(FirstFit())
        assert out.online_cost >= mu * adv.target_bins - 1e-9
        # inequality (2): Σ l_{t_i} ≤ ON(σ)
        assert adv.online_cost_lower_bound() <= out.online_cost + 1e-9

    def test_lengths_are_powers_of_two(self):
        adv = SqrtLogAdversary(16)
        out = adv.run(FirstFit())
        lengths = {it.length for it in out.instance}
        assert lengths <= {2.0**k for k in range(5)}

    def test_mu_of_generated_instance_at_most_target(self):
        adv = SqrtLogAdversary(64)
        out = adv.run(FirstFit())
        assert out.instance.mu <= 64.0

    @pytest.mark.parametrize("factory", [FirstFit, ClassifyByDuration])
    def test_ratio_exceeds_theorem_floor(self, factory):
        mu = 64
        adv = SqrtLogAdversary(mu)
        out = adv.run(factory())
        opt = opt_reference(out.instance, max_exact=14)
        ratio = out.online_cost / opt.upper
        assert ratio >= lower_bound_sqrt_log(mu) - 1e-9

    def test_fewer_rounds(self):
        adv = SqrtLogAdversary(64, rounds=8)
        out = adv.run(FirstFit())
        assert max(it.arrival for it in out.instance) <= 7.0

    def test_realized_instance_matches_result(self):
        adv = SqrtLogAdversary(16)
        out = adv.run(FirstFit())
        rebuilt = realized_instance(out.result)
        assert len(rebuilt) == len(out.result.items)
