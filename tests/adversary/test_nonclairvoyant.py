"""Unit tests for the non-clairvoyant Ω(μ) adversary."""

import math

import pytest

from repro.adversary.nonclairvoyant import NonClairvoyantAdversary
from repro.algorithms.anyfit import BestFit, FirstFit
from repro.core.errors import SimulationError
from repro.core.validate import audit
from repro.offline.optimal import opt_reference


class TestConstruction:
    def test_invalid_g(self):
        with pytest.raises(ValueError):
            NonClairvoyantAdversary(0, 4.0)

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            NonClairvoyantAdversary(4, 1.0)

    def test_rejects_clairvoyant_algorithm(self):
        adv = NonClairvoyantAdversary(4, 4.0)
        with pytest.raises(SimulationError):
            adv.run(FirstFit())  # clairvoyant=True


class TestForcing:
    def test_survivor_per_bin(self):
        g = 4
        adv = NonClairvoyantAdversary(g, float(g))
        out = adv.run(FirstFit(clairvoyant=False))
        audit(out.result)
        # g² items, g survivors (FF packs g per bin → g bins)
        assert len(out.instance) == g * g
        long_items = [it for it in out.instance if it.length > 1.5]
        assert len(long_items) == g

    def test_online_cost_scales_with_g_mu(self):
        g = 8
        adv = NonClairvoyantAdversary(g, float(g))
        out = adv.run(FirstFit(clairvoyant=False))
        assert out.online_cost >= g * g - 1e-9  # g bins × μ=g

    @pytest.mark.parametrize("g", [4, 8, 16])
    def test_ratio_grows_linearly(self, g):
        adv = NonClairvoyantAdversary(g, float(g))
        out = adv.run(FirstFit(clairvoyant=False))
        opt = opt_reference(out.instance, max_exact=12)
        ratio = out.online_cost / opt.upper
        assert ratio >= g / 2 - 1e-6  # Θ(μ) with constant ~1/2

    def test_works_against_best_fit(self):
        adv = NonClairvoyantAdversary(8, 8.0)
        out = adv.run(BestFit(clairvoyant=False))
        audit(out.result)
        opt = opt_reference(out.instance, max_exact=12)
        assert out.online_cost / opt.upper >= 3.9

    def test_mu_of_realized_instance(self):
        adv = NonClairvoyantAdversary(4, 16.0)
        out = adv.run(FirstFit(clairvoyant=False))
        assert math.isclose(out.instance.mu, 16.0)
