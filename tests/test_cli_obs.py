"""CLI tests for the obs verbs (summarize error paths, diff, regress)
and the ledger flags shared by run/pack/replay."""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import read_ledger
from repro.workloads import dump_jsonl, uniform_random


@pytest.fixture
def jsonl_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    dump_jsonl(uniform_random(100, 16, seed=0), path)
    return str(path)


class TestSummarizeErrors:
    def test_missing_file_is_one_line_error(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs summarize:")
        assert "Traceback" not in err

    def test_empty_trace_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "summarize", str(path)]) == 1
        err = capsys.readouterr().err
        assert "empty trace" in err
        assert err.count("\n") == 1

    def test_truncated_trace_reports_line_number(self, tmp_path, capsys):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"name": "ok"}\n{"name": "cut-off', )
        assert main(["obs", "summarize", str(path)]) == 1
        err = capsys.readouterr().err
        assert f"{path}:2" in err
        assert "Traceback" not in err


class TestLedgerFlags:
    def test_replay_writes_ledger_record(self, jsonl_path, tmp_path, capsys):
        led = tmp_path / "led"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit",
             "--ledger-dir", str(led)]
        ) == 0
        out = capsys.readouterr().out
        assert "ledger:" in out
        (rec,) = read_ledger(led)
        assert rec.kind == "replay"
        assert rec.algorithm == "FirstFit"
        assert rec.metrics["cost"] > 0
        assert rec.invariants is None  # monitors are opt-in

    def test_resumed_replays_are_marked_in_the_ledger(
        self, jsonl_path, tmp_path, capsys
    ):
        # a resumed run covers only part of the trace; the flag keeps
        # `obs regress` from gating it against a full-run baseline
        ckpt = tmp_path / "engine.ckpt"
        led = tmp_path / "led"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit",
             "--checkpoint-every", "100", "--checkpoint", str(ckpt),
             "--ledger-dir", str(led)]
        ) == 0
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit", "--resume", str(ckpt),
             "--ledger-dir", str(led)]
        ) == 0
        capsys.readouterr()
        flags = sorted(rec.config["resumed"] for rec in read_ledger(led))
        assert flags == [False, True]

    def test_no_ledger_suppresses_writes(self, jsonl_path, tmp_path, capsys,
                                         monkeypatch):
        led = tmp_path / "led"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(led))
        assert main(["replay", jsonl_path, "--no-ledger"]) == 0
        assert "ledger:" not in capsys.readouterr().out
        assert not led.exists()

    def test_env_var_redirects_ledger(self, jsonl_path, tmp_path, capsys,
                                      monkeypatch):
        led = tmp_path / "via-env"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(led))
        assert main(["replay", jsonl_path, "-a", "FirstFit"]) == 0
        assert len(read_ledger(led)) == 1

    def test_invariants_flag_attaches_monitor(self, jsonl_path, tmp_path,
                                              capsys):
        led = tmp_path / "led"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit", "--invariants",
             "--ledger-dir", str(led)]
        ) == 0
        out = capsys.readouterr().out
        assert "invariants:" in out and "-> ok" in out
        (rec,) = read_ledger(led)
        assert rec.invariants["ok"] is True
        assert rec.invariants["violations"] == []

    def test_run_experiment_writes_ledger(self, tmp_path, capsys):
        led = tmp_path / "led"
        assert main(["run", "LEM3.1", "--ledger-dir", str(led)]) == 0
        (rec,) = read_ledger(led)
        assert rec.kind == "experiment"
        assert rec.metrics["passed"] == 1 or rec.metrics["passed"] is True


class TestDiff:
    def _two_records(self, jsonl_path, tmp_path, drift=False):
        led_a, led_b = tmp_path / "a", tmp_path / "b"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit",
             "--ledger-dir", str(led_a)]
        ) == 0
        args = ["replay", jsonl_path, "-a", "FirstFit",
                "--ledger-dir", str(led_b)]
        if drift:
            args += ["--limit", "50"]  # different workload => cost drift
        assert main(args) == 0
        (pa,) = list(led_a.glob("replay-*.json"))
        (pb,) = list(led_b.glob("replay-*.json"))
        return str(pa), str(pb)

    def test_identical_records_pass(self, jsonl_path, tmp_path, capsys):
        pa, pb = self._two_records(jsonl_path, tmp_path)
        assert main(["obs", "diff", pa, pb]) == 0
        assert "all within tolerance" in capsys.readouterr().out

    def test_drifted_records_fail(self, jsonl_path, tmp_path, capsys):
        pa, pb = self._two_records(jsonl_path, tmp_path, drift=True)
        assert main(["obs", "diff", pa, pb]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and "drifted" in out

    def test_tolerance_flag_loosens_gate(self, jsonl_path, tmp_path, capsys):
        pa, pb = self._two_records(jsonl_path, tmp_path, drift=True)
        # with an everything-goes tolerance the same pair passes
        assert main(["obs", "diff", pa, pb, "--tol", "*=10"]) == 0

    def test_damaged_record_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["obs", "diff", str(bad), str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs diff:")
        assert "Traceback" not in err

    def test_malformed_tolerance_is_one_line_error(self, tmp_path, capsys):
        p = tmp_path / "r.json"
        p.write_text(json.dumps({"kind": "x"}))
        assert main(["obs", "diff", str(p), str(p), "--tol", "broken"]) == 1
        assert "PATTERN=REL" in capsys.readouterr().err


class TestRegress:
    def _ledger_with_baseline(self, jsonl_path, tmp_path):
        led = tmp_path / "led"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit", "--invariants",
             "--ledger-dir", str(led)]
        ) == 0
        records = [json.loads(p.read_text())
                   for p in sorted(led.glob("*.json"))]
        (led / "baseline.json").write_text(
            json.dumps({"records": records})
        )
        return led

    def test_self_baseline_passes(self, jsonl_path, tmp_path, capsys):
        led = self._ledger_with_baseline(jsonl_path, tmp_path)
        assert main(["obs", "regress", "--ledger-dir", str(led)]) == 0
        assert "regress: PASS" in capsys.readouterr().out

    def test_cost_drift_fails(self, jsonl_path, tmp_path, capsys):
        led = self._ledger_with_baseline(jsonl_path, tmp_path)
        # skew the baseline cost so the (matching) current record drifts
        base = json.loads((led / "baseline.json").read_text())
        base["records"][0]["metrics"]["cost"] += 100.0
        (led / "baseline.json").write_text(json.dumps(base))
        assert main(["obs", "regress", "--ledger-dir", str(led)]) == 1
        out = capsys.readouterr().out
        assert "regress: FAIL" in out and "metrics.cost" in out

    def test_new_violation_fails(self, jsonl_path, tmp_path, capsys):
        led = self._ledger_with_baseline(jsonl_path, tmp_path)
        # corrupt the *current* record with a fabricated violation
        (path,) = list(led.glob("replay-*.json"))
        rec = json.loads(path.read_text())
        rec["invariants"]["violations"] = [
            {"invariant": "span-cost", "message": "fabricated"}
        ]
        path.write_text(json.dumps(rec))
        assert main(["obs", "regress", "--ledger-dir", str(led)]) == 1
        assert "invariants.n_violations" in capsys.readouterr().out

    def test_missing_baseline_is_one_line_error(self, tmp_path, capsys):
        assert main(
            ["obs", "regress", "--ledger-dir", str(tmp_path / "void")]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs regress:")
        assert "Traceback" not in err

    def test_explicit_baseline_path(self, jsonl_path, tmp_path, capsys):
        led = self._ledger_with_baseline(jsonl_path, tmp_path)
        moved = tmp_path / "frozen.json"
        moved.write_text((led / "baseline.json").read_text())
        (led / "baseline.json").unlink()
        assert main(
            ["obs", "regress", "--ledger-dir", str(led),
             "--baseline", str(moved)]
        ) == 0


class TestStrictInvariants:
    def test_strict_flag_on_clean_run_passes(self, jsonl_path, capsys):
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit", "--strict-invariants",
             "--no-ledger"]
        ) == 0
        assert "invariants:" in capsys.readouterr().out
