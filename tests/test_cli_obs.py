"""CLI tests for the obs verbs (summarize error paths, diff, regress)
and the ledger flags shared by run/pack/replay."""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import read_ledger
from repro.workloads import dump_jsonl, uniform_random


@pytest.fixture
def jsonl_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    dump_jsonl(uniform_random(100, 16, seed=0), path)
    return str(path)


class TestSummarizeErrors:
    def test_missing_file_is_one_line_error(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs summarize:")
        assert "Traceback" not in err

    def test_empty_trace_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "summarize", str(path)]) == 1
        err = capsys.readouterr().err
        assert "empty trace" in err
        assert err.count("\n") == 1

    def test_truncated_final_line_warns_and_succeeds(self, tmp_path,
                                                     capsys):
        # a crash mid-write leaves a cut-off last record; the rest of
        # the trace is still good evidence and must stay summarizable
        path = tmp_path / "cut.jsonl"
        path.write_text('{"name": "ok"}\n{"name": "cut-off')
        assert main(["obs", "summarize", str(path)]) == 0
        captured = capsys.readouterr()
        assert "warning: final line 2 is truncated" in captured.out
        assert "ok" in captured.out  # the intact record is summarized

    def test_midfile_corruption_reports_line_number(self, tmp_path,
                                                    capsys):
        # corruption *followed by* valid lines is not a crashed tail —
        # that still fails loudly with the offending line number
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"name": "ok"}\n{"name": "cut-off\n{"name": "ok"}\n')
        assert main(["obs", "summarize", str(path)]) == 1
        err = capsys.readouterr().err
        assert f"{path}:2" in err
        assert "Traceback" not in err


class TestSummarizeTop:
    def _trace(self, tmp_path, names=("a", "b", "c", "d")):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            for k, name in enumerate(names):
                fh.write(json.dumps(
                    {"name": name, "t_ns": k, "dur_ns": 0, "depth": 0,
                     "fields": {}}
                ) + "\n")
        return str(path)

    def test_top_bounds_the_table(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(["obs", "summarize", path, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "(+2 more name(s)" in out

    def test_top_larger_than_table_shows_everything(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(["obs", "summarize", path, "--top", "99"]) == 0
        out = capsys.readouterr().out
        assert "more name(s)" not in out
        for name in ("a", "b", "c", "d"):
            assert name in out

    def test_top_zero_is_one_line_error(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(["obs", "summarize", path, "--top", "0"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs summarize:")
        assert "Traceback" not in err


class TestLedgerFlags:
    def test_replay_writes_ledger_record(self, jsonl_path, tmp_path, capsys):
        led = tmp_path / "led"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit",
             "--ledger-dir", str(led)]
        ) == 0
        out = capsys.readouterr().out
        assert "ledger:" in out
        (rec,) = read_ledger(led)
        assert rec.kind == "replay"
        assert rec.algorithm == "FirstFit"
        assert rec.metrics["cost"] > 0
        assert rec.invariants is None  # monitors are opt-in

    def test_resumed_replays_are_marked_in_the_ledger(
        self, jsonl_path, tmp_path, capsys
    ):
        # a resumed run covers only part of the trace; the flag keeps
        # `obs regress` from gating it against a full-run baseline
        ckpt = tmp_path / "engine.ckpt"
        led = tmp_path / "led"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit",
             "--checkpoint-every", "100", "--checkpoint", str(ckpt),
             "--ledger-dir", str(led)]
        ) == 0
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit", "--resume", str(ckpt),
             "--ledger-dir", str(led)]
        ) == 0
        capsys.readouterr()
        flags = sorted(rec.config["resumed"] for rec in read_ledger(led))
        assert flags == [False, True]

    def test_no_ledger_suppresses_writes(self, jsonl_path, tmp_path, capsys,
                                         monkeypatch):
        led = tmp_path / "led"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(led))
        assert main(["replay", jsonl_path, "--no-ledger"]) == 0
        assert "ledger:" not in capsys.readouterr().out
        assert not led.exists()

    def test_env_var_redirects_ledger(self, jsonl_path, tmp_path, capsys,
                                      monkeypatch):
        led = tmp_path / "via-env"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(led))
        assert main(["replay", jsonl_path, "-a", "FirstFit"]) == 0
        assert len(read_ledger(led)) == 1

    def test_invariants_flag_attaches_monitor(self, jsonl_path, tmp_path,
                                              capsys):
        led = tmp_path / "led"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit", "--invariants",
             "--ledger-dir", str(led)]
        ) == 0
        out = capsys.readouterr().out
        assert "invariants:" in out and "-> ok" in out
        (rec,) = read_ledger(led)
        assert rec.invariants["ok"] is True
        assert rec.invariants["violations"] == []

    def test_run_experiment_writes_ledger(self, tmp_path, capsys):
        led = tmp_path / "led"
        assert main(["run", "LEM3.1", "--ledger-dir", str(led)]) == 0
        (rec,) = read_ledger(led)
        assert rec.kind == "experiment"
        assert rec.metrics["passed"] == 1 or rec.metrics["passed"] is True


class TestDiff:
    def _two_records(self, jsonl_path, tmp_path, drift=False):
        led_a, led_b = tmp_path / "a", tmp_path / "b"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit",
             "--ledger-dir", str(led_a)]
        ) == 0
        args = ["replay", jsonl_path, "-a", "FirstFit",
                "--ledger-dir", str(led_b)]
        if drift:
            args += ["--limit", "50"]  # different workload => cost drift
        assert main(args) == 0
        (pa,) = list(led_a.glob("replay-*.json"))
        (pb,) = list(led_b.glob("replay-*.json"))
        return str(pa), str(pb)

    def test_identical_records_pass(self, jsonl_path, tmp_path, capsys):
        pa, pb = self._two_records(jsonl_path, tmp_path)
        assert main(["obs", "diff", pa, pb]) == 0
        assert "all within tolerance" in capsys.readouterr().out

    def test_drifted_records_fail(self, jsonl_path, tmp_path, capsys):
        pa, pb = self._two_records(jsonl_path, tmp_path, drift=True)
        assert main(["obs", "diff", pa, pb]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and "drifted" in out

    def test_tolerance_flag_loosens_gate(self, jsonl_path, tmp_path, capsys):
        pa, pb = self._two_records(jsonl_path, tmp_path, drift=True)
        # with an everything-goes tolerance the same pair passes
        assert main(["obs", "diff", pa, pb, "--tol", "*=10"]) == 0

    def test_damaged_record_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["obs", "diff", str(bad), str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs diff:")
        assert "Traceback" not in err

    def test_malformed_tolerance_is_one_line_error(self, tmp_path, capsys):
        p = tmp_path / "r.json"
        p.write_text(json.dumps({"kind": "x"}))
        assert main(["obs", "diff", str(p), str(p), "--tol", "broken"]) == 1
        assert "PATTERN=REL" in capsys.readouterr().err


class TestRegress:
    def _ledger_with_baseline(self, jsonl_path, tmp_path):
        led = tmp_path / "led"
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit", "--invariants",
             "--ledger-dir", str(led)]
        ) == 0
        records = [json.loads(p.read_text())
                   for p in sorted(led.glob("*.json"))]
        (led / "baseline.json").write_text(
            json.dumps({"records": records})
        )
        return led

    def test_self_baseline_passes(self, jsonl_path, tmp_path, capsys):
        led = self._ledger_with_baseline(jsonl_path, tmp_path)
        assert main(["obs", "regress", "--ledger-dir", str(led)]) == 0
        assert "regress: PASS" in capsys.readouterr().out

    def test_cost_drift_fails(self, jsonl_path, tmp_path, capsys):
        led = self._ledger_with_baseline(jsonl_path, tmp_path)
        # skew the baseline cost so the (matching) current record drifts
        base = json.loads((led / "baseline.json").read_text())
        base["records"][0]["metrics"]["cost"] += 100.0
        (led / "baseline.json").write_text(json.dumps(base))
        assert main(["obs", "regress", "--ledger-dir", str(led)]) == 1
        out = capsys.readouterr().out
        assert "regress: FAIL" in out and "metrics.cost" in out

    def test_new_violation_fails(self, jsonl_path, tmp_path, capsys):
        led = self._ledger_with_baseline(jsonl_path, tmp_path)
        # corrupt the *current* record with a fabricated violation
        (path,) = list(led.glob("replay-*.json"))
        rec = json.loads(path.read_text())
        rec["invariants"]["violations"] = [
            {"invariant": "span-cost", "message": "fabricated"}
        ]
        path.write_text(json.dumps(rec))
        assert main(["obs", "regress", "--ledger-dir", str(led)]) == 1
        assert "invariants.n_violations" in capsys.readouterr().out

    def test_missing_baseline_is_one_line_error(self, tmp_path, capsys):
        assert main(
            ["obs", "regress", "--ledger-dir", str(tmp_path / "void")]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs regress:")
        assert "Traceback" not in err

    def test_explicit_baseline_path(self, jsonl_path, tmp_path, capsys):
        led = self._ledger_with_baseline(jsonl_path, tmp_path)
        moved = tmp_path / "frozen.json"
        moved.write_text((led / "baseline.json").read_text())
        (led / "baseline.json").unlink()
        assert main(
            ["obs", "regress", "--ledger-dir", str(led),
             "--baseline", str(moved)]
        ) == 0


class TestFlame:
    def _profile_path(self, tmp_path):
        # the replay must span several sample ticks to collect stacks,
        # so feed enough items to keep the engine busy for ~100ms+
        trace = tmp_path / "big.jsonl"
        dump_jsonl(uniform_random(8000, 16, seed=1), trace)
        out = tmp_path / "replay.prof.json"
        assert main(
            ["replay", str(trace), "-a", "HybridAlgorithm",
             "--sample-hz", "1997", "--profile-out", str(out),
             "--no-ledger"]
        ) == 0
        return out

    def test_replay_sample_hz_writes_profile(self, tmp_path, capsys):
        out = self._profile_path(tmp_path)
        assert "profile:" in capsys.readouterr().out
        profile = json.loads(out.read_text())
        assert profile["schema"] == 1
        assert profile["hz"] == 1997.0

    def test_flame_renders_top_table(self, tmp_path, capsys):
        out = self._profile_path(tmp_path)
        capsys.readouterr()
        assert main(["obs", "flame", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "samples at 1997" in rendered
        assert "self%" in rendered and "cum%" in rendered

    def test_flame_exports_collapsed_and_speedscope(self, tmp_path,
                                                    capsys):
        out = self._profile_path(tmp_path)
        collapsed = tmp_path / "c.txt"
        speedscope = tmp_path / "s.json"
        assert main(
            ["obs", "flame", str(out), "--collapsed", str(collapsed),
             "--speedscope", str(speedscope)]
        ) == 0
        lines = collapsed.read_text().strip().splitlines()
        assert lines
        for line in lines:  # "thread;frame;...;leaf count"
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack
        scope = json.loads(speedscope.read_text())
        assert scope["$schema"].startswith("https://www.speedscope.app")
        assert scope["profiles"]

    def test_flame_on_missing_profile_is_one_line_error(self, tmp_path,
                                                        capsys):
        assert main(["obs", "flame", str(tmp_path / "nope.json")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs flame:")
        assert "Traceback" not in err


class TestCriticalPath:
    def test_span_free_trace_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps(
            {"name": "kernel.place", "t_ns": 5, "dur_ns": 0, "depth": 0,
             "fields": {}}
        ) + "\n")
        assert main(["obs", "critical-path", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs critical-path:")
        assert "Traceback" not in err

    def test_span_trace_renders_and_dumps_json(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(
                {"name": "feed", "t_ns": 10, "dur_ns": 60, "depth": 1,
                 "kind": "span", "fields": {}}
            ) + "\n")
            fh.write(json.dumps(
                {"name": "replay", "t_ns": 0, "dur_ns": 100, "depth": 0,
                 "kind": "span", "fields": {}}
            ) + "\n")
        out = tmp_path / "report.json"
        assert main(
            ["obs", "critical-path", str(path), "--json", str(out)]
        ) == 0
        rendered = capsys.readouterr().out
        assert "critical path" in rendered
        report = json.loads(out.read_text())
        assert report["mode"] == "spans"
        assert report["events"] == 2


class TestStrictInvariants:
    def test_strict_flag_on_clean_run_passes(self, jsonl_path, capsys):
        assert main(
            ["replay", jsonl_path, "-a", "FirstFit", "--strict-invariants",
             "--no-ledger"]
        ) == 0
        assert "invariants:" in capsys.readouterr().out
