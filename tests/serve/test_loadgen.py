"""Load generator: shard-affine routing, workloads, percentiles, reports."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import PlacementServer, ServeConfig
from repro.serve.client import PlacementClient
from repro.serve.loadgen import (
    WORKLOADS,
    LoadReport,
    _percentile,
    make_workload,
    run_loadgen,
    shard_affine_tenants,
)
from repro.serve.shard import HashRing


class TestShardAffineTenants:
    def test_each_connection_gets_its_own_shard(self):
        tenants = shard_affine_tenants(4, 4)
        ring = HashRing(4)
        assert [ring.shard_for(t) for t in tenants] == [0, 1, 2, 3]

    def test_deterministic(self):
        assert shard_affine_tenants(3, 2) == shard_affine_tenants(3, 2)

    def test_single_shard_single_connection(self):
        tenants = shard_affine_tenants(1, 1)
        assert len(tenants) == 1
        assert HashRing(1).shard_for(tenants[0]) == 0

    def test_more_connections_than_shards_rejected(self):
        with pytest.raises(ValueError, match="must not exceed"):
            shard_affine_tenants(2, 3)


class TestWorkloads:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_registered_workloads_build_ordered_traces(self, name):
        inst = make_workload(name, 40, seed=1)
        items = list(inst)
        assert len(items) == 40
        arrivals = [it.arrival for it in items]
        assert arrivals == sorted(arrivals)

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("nope", 10)

    def test_seed_changes_the_trace(self):
        a = [it.size for it in make_workload("uniform", 50, seed=0)]
        b = [it.size for it in make_workload("uniform", 50, seed=1)]
        assert a != b


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.99) == 0.0

    def test_singleton(self):
        assert _percentile([7.0], 0.5) == 7.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 100.0
        assert _percentile(values, 0.5) == pytest.approx(50.0, abs=1.0)


class TestLoadReport:
    def report(self, **overrides):
        kwargs = dict(
            workload="uniform", items=100, connections=2,
            offered_rps=1000.0, duration_s=0.5, ok=98, errors=2,
            error_codes={"overloaded": 2}, p50_ms=1.0, p90_ms=2.0,
            p99_ms=4.0, max_ms=9.0,
        )
        kwargs.update(overrides)
        return LoadReport(**kwargs)

    def test_achieved_rps(self):
        assert self.report().achieved_rps == pytest.approx(200.0)
        assert self.report(duration_s=0.0).achieved_rps == 0.0

    def test_to_dict_shape(self):
        d = self.report().to_dict()
        assert d["achieved_rps"] == pytest.approx(200.0)
        assert d["latency_ms"] == {"p50": 1.0, "p90": 2.0, "p99": 4.0,
                                   "max": 9.0}
        assert d["error_codes"] == {"overloaded": 2}

    def test_render_mentions_the_essentials(self):
        text = self.report().render()
        assert "100 requests" in text
        assert "98 ok, 2 errors" in text
        assert "p99=4.000ms" in text


class TestRunLoadgen:
    def test_against_in_process_server(self):
        async def main():
            server = PlacementServer(ServeConfig(shards=2))
            await server.start()
            try:
                report = await run_loadgen(
                    "127.0.0.1", server.port,
                    instance=make_workload("uniform", 150, seed=4),
                    rate=20_000.0, connections=2, workload="uniform",
                )
            finally:
                await server.drain()
            return report

        report = asyncio.run(main())
        assert report.ok == 150
        assert report.errors == 0
        assert report.duration_s > 0
        assert report.achieved_rps > 0
        assert report.p50_ms <= report.p99_ms <= report.max_ms
        assert report.server_stats["totals"]["accepted"] == 150

    def test_connections_capped_by_shard_count(self):
        async def main():
            server = PlacementServer(ServeConfig(shards=1))
            await server.start()
            try:
                with pytest.raises(ValueError, match="must not exceed"):
                    await run_loadgen(
                        "127.0.0.1", server.port,
                        instance=make_workload("uniform", 10),
                        rate=1000.0, connections=2,
                    )
            finally:
                await server.drain()

        asyncio.run(main())

    def test_exception_futures_land_in_error_codes(self, monkeypatch):
        # Regression: a submit() future that resolves to an *exception*
        # (connection died mid-run) used to raise inside the done
        # callback, where asyncio logs and swallows it — the run "lost"
        # those requests entirely instead of reporting them.  Inject
        # failures for every fifth item and demand they show up in the
        # error breakdown, with the run still completing.
        real_submit = PlacementClient.submit

        def flaky_submit(self, payload):
            if payload.get("op") == "arrive" and payload["id"] % 5 == 0:
                fut = asyncio.get_running_loop().create_future()
                fut.set_exception(RuntimeError("injected failure"))
                return fut
            return real_submit(self, payload)

        monkeypatch.setattr(PlacementClient, "submit", flaky_submit)

        async def main():
            server = PlacementServer(ServeConfig(shards=1))
            await server.start()
            try:
                return await run_loadgen(
                    "127.0.0.1", server.port,
                    instance=make_workload("uniform", 100, seed=9),
                    rate=50_000.0, connections=1,
                )
            finally:
                await server.drain()

        report = asyncio.run(main())
        assert report.error_codes == {"exception:RuntimeError": 20}
        assert report.errors == 20
        assert report.ok == 80
        assert report.items == 100

    def test_invalid_parameters(self):
        async def main(**kwargs):
            await run_loadgen("127.0.0.1", 1,
                              instance=make_workload("uniform", 4), **kwargs)

        with pytest.raises(ValueError, match="rate"):
            asyncio.run(main(rate=0.0))
        with pytest.raises(ValueError, match="connections"):
            asyncio.run(main(connections=0))
