"""Wire protocol: strict validation in, structured errors out."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode,
    encode,
    error_reply,
    ok_reply,
    parse_request,
)


def arrive_line(**overrides) -> str:
    obj = {"op": "arrive", "id": 7, "arrival": 0.0, "departure": 4.0,
           "size": 0.5}
    obj.update(overrides)
    return json.dumps(obj)


class TestParseValid:
    def test_arrive(self):
        req = parse_request(arrive_line(seq=12, tenant="acme"))
        assert req.op == "arrive"
        assert req.seq == 12
        assert req.id == "7"  # ids normalise to strings
        assert req.tenant == "acme"
        assert req.arrival == 0.0
        assert req.departure == 4.0
        assert req.size == 0.5

    def test_arrive_bytes_line(self):
        req = parse_request(arrive_line().encode())
        assert req.op == "arrive"

    def test_adaptive_arrive_has_no_departure(self):
        req = parse_request(arrive_line(departure=None))
        assert req.departure is None

    def test_depart(self):
        req = parse_request('{"op": "depart", "id": "x", "time": 3.5}')
        assert req.op == "depart"
        assert req.id == "x"
        assert req.time == 3.5

    def test_advance(self):
        req = parse_request('{"op": "advance", "time": 9}')
        assert req.time == 9.0

    @pytest.mark.parametrize("op", ["stats", "ping"])
    def test_bare_ops(self, op):
        assert parse_request(json.dumps({"op": op})).op == op

    def test_pinned_matching_version_accepted(self):
        req = parse_request(arrive_line(v=PROTOCOL_VERSION))
        assert req.op == "arrive"

    def test_to_item_carries_the_uid(self):
        item = parse_request(arrive_line()).to_item(41)
        assert (item.uid, item.arrival, item.departure, item.size) == (
            41, 0.0, 4.0, 0.5,
        )


class TestRoutingKey:
    def test_tenant_wins(self):
        req = parse_request(arrive_line(tenant="t1"))
        assert req.routing_key == "t1"

    def test_falls_back_to_id(self):
        assert parse_request(arrive_line()).routing_key == "7"


def code_of(excinfo) -> str:
    assert excinfo.value.code in ERROR_CODES
    return excinfo.value.code


class TestParseErrors:
    def test_not_json(self):
        with pytest.raises(ProtocolError) as ei:
            parse_request("{nope")
        assert code_of(ei) == "bad-json"

    def test_not_an_object(self):
        with pytest.raises(ProtocolError) as ei:
            parse_request("[1, 2]")
        assert code_of(ei) == "bad-json"

    def test_not_utf8(self):
        with pytest.raises(ProtocolError) as ei:
            parse_request(b"\xff\xfe{}")
        assert code_of(ei) == "bad-json"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as ei:
            parse_request('{"op": "explode"}')
        assert code_of(ei) == "bad-request"
        assert "explode" in ei.value.message

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as ei:
            parse_request("{}")
        assert code_of(ei) == "bad-request"

    def test_wrong_version(self):
        with pytest.raises(ProtocolError) as ei:
            parse_request(arrive_line(v=99))
        assert code_of(ei) == "bad-version"

    @pytest.mark.parametrize("field", ["id", "arrival", "size"])
    def test_missing_arrive_field(self, field):
        obj = json.loads(arrive_line())
        del obj[field]
        with pytest.raises(ProtocolError) as ei:
            parse_request(json.dumps(obj))
        assert code_of(ei) == "bad-request"
        assert field in ei.value.message

    @pytest.mark.parametrize(
        "overrides",
        [{"arrival": "soon"}, {"size": True}, {"arrival": float("nan")},
         {"departure": float("inf")}],
        ids=["string", "bool", "nan", "inf"],
    )
    def test_non_numeric_fields(self, overrides):
        # NaN/inf survive json.dumps via allow_nan, so they must be
        # caught by the finiteness check rather than the type check
        with pytest.raises(ProtocolError) as ei:
            parse_request(arrive_line(**overrides))
        assert code_of(ei) == "bad-request"

    @pytest.mark.parametrize(
        "overrides",
        [{"size": 0.0}, {"size": 1.5}, {"departure": -1.0},
         {"departure": 0.0}],
        ids=["zero-size", "oversize", "departs-before", "zero-interval"],
    )
    def test_item_semantics(self, overrides):
        with pytest.raises(ProtocolError) as ei:
            parse_request(arrive_line(**overrides))
        assert code_of(ei) == "bad-item"

    def test_bad_seq_type(self):
        with pytest.raises(ProtocolError) as ei:
            parse_request(arrive_line(seq=[1]))
        assert code_of(ei) == "bad-request"

    def test_seq_is_echoed_in_the_error(self):
        with pytest.raises(ProtocolError) as ei:
            parse_request(arrive_line(size=0.0, seq=77))
        assert ei.value.reply()["seq"] == 77


class TestReplies:
    def test_ok_reply_envelope(self):
        reply = ok_reply("arrive", seq=3, bin=2, opened=True)
        assert reply == {"ok": True, "op": "arrive", "seq": 3, "bin": 2,
                         "opened": True}

    def test_seq_omitted_when_absent(self):
        assert "seq" not in ok_reply("ping")
        assert "seq" not in error_reply("internal", "boom")

    def test_error_reply_envelope(self):
        reply = error_reply("overloaded", "queue full", seq=9,
                            retry_after=0.05)
        assert reply["ok"] is False
        assert reply["error"] == "overloaded"
        assert reply["retry_after"] == 0.05
        assert reply["seq"] == 9

    def test_encode_decode_round_trip(self):
        reply = ok_reply("stats", seq="s-1", totals={"cost": 1.5})
        line = encode(reply)
        assert line.endswith(b"\n")
        assert decode(line) == reply

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValueError):
            decode(b"[]\n")

    def test_every_op_is_listed(self):
        assert set(OPS) == {
            "arrive", "depart", "advance", "stats", "ping", "telemetry",
            "profile",
        }
