"""Shards: hash-ring routing, kernel semantics over the wire-free API."""

from __future__ import annotations

import asyncio
import collections

import pytest

from repro import FirstFit
from repro.serve.protocol import Request, parse_request
from repro.serve.shard import HashRing, PlacementShard, stable_hash


class TestStableHash:
    def test_deterministic_and_64bit(self):
        assert stable_hash("acme") == stable_hash("acme")
        assert 0 <= stable_hash("acme") < 2**64

    def test_distinct_keys_differ(self):
        assert stable_hash("a") != stable_hash("b")


class TestHashRing:
    def test_single_shard_shortcut(self):
        ring = HashRing(1)
        assert ring.shard_for("anything") == 0

    def test_stable_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = [f"tenant-{i}" for i in range(200)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_all_shards_reachable_and_roughly_balanced(self):
        ring = HashRing(4)
        counts = collections.Counter(
            ring.shard_for(f"k{i}") for i in range(4000)
        )
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 4000 / 4 / 4  # no starved shard

    def test_growing_the_ring_moves_few_keys(self):
        # the consistent-hashing property: going 4 -> 5 shards remaps
        # roughly 1/5 of keys, not all of them (mod-hashing would move ~4/5)
        small, big = HashRing(4), HashRing(5)
        keys = [f"k{i}" for i in range(2000)]
        moved = sum(
            small.shard_for(k) != big.shard_for(k) for k in keys
        )
        assert moved < len(keys) / 2

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashRing(0)


def arrive(id, arrival, departure, size, seq=None) -> Request:
    return Request(op="arrive", seq=seq, id=str(id), arrival=arrival,
                   departure=departure, size=size)


class TestShardApply:
    def test_arrive_places_and_reports_bin(self):
        shard = PlacementShard(0, FirstFit())
        r1 = shard.apply(arrive(1, 0.0, 4.0, 0.6, seq=11))
        r2 = shard.apply(arrive(2, 0.0, 4.0, 0.6))
        assert r1["ok"] and r1["opened"] and r1["seq"] == 11
        assert r2["ok"] and r2["opened"]
        assert r1["bin"] != r2["bin"]  # 0.6 + 0.6 > capacity
        r3 = shard.apply(arrive(3, 1.0, 2.0, 0.3))
        assert r3["bin"] == r1["bin"] and not r3["opened"]
        assert shard.accepted == 3

    def test_out_of_order_arrival_is_rejected_not_fatal(self):
        shard = PlacementShard(0, FirstFit())
        shard.apply(arrive(1, 5.0, 9.0, 0.5))
        reply = shard.apply(arrive(2, 1.0, 2.0, 0.5))
        assert not reply["ok"]
        assert reply["error"] == "out-of-order"
        assert reply["clock"] == 5.0
        assert shard.rejected == 1
        # the shard keeps serving
        assert shard.apply(arrive(3, 6.0, 7.0, 0.5))["ok"]

    def test_adaptive_arrive_needs_non_clairvoyant_algorithm(self):
        shard = PlacementShard(0, FirstFit())  # clairvoyant by default
        reply = shard.apply(arrive("job", 0.0, None, 0.5))
        assert reply["error"] == "bad-item"
        assert "unknown departure" in reply["message"]

    def test_adaptive_arrive_then_explicit_depart(self):
        shard = PlacementShard(0, FirstFit(clairvoyant=False))
        assert shard.apply(arrive("job", 0.0, None, 0.5))["ok"]
        assert shard.stats()["live_adaptive"] == 1
        reply = shard.apply(Request(op="depart", id="job", time=2.0))
        assert reply["ok"]
        assert shard.stats()["live_adaptive"] == 0
        assert shard.engine.accounting.departures == 1

    def test_duplicate_live_adaptive_id_rejected(self):
        shard = PlacementShard(0, FirstFit(clairvoyant=False))
        shard.apply(arrive("job", 0.0, None, 0.5))
        reply = shard.apply(arrive("job", 1.0, None, 0.5))
        assert reply["error"] == "duplicate-id"
        # ...but the id is reusable once the first item departed
        shard.apply(Request(op="depart", id="job", time=2.0))
        assert shard.apply(arrive("job", 3.0, None, 0.5))["ok"]

    def test_depart_unknown_id(self):
        shard = PlacementShard(0, FirstFit())
        reply = shard.apply(Request(op="depart", id="ghost", time=1.0))
        assert reply["error"] == "unknown-item"

    def test_scheduled_departures_happen_via_advance(self):
        shard = PlacementShard(0, FirstFit())
        shard.apply(arrive(1, 0.0, 2.0, 0.5))
        assert shard.stats()["open_bins"] == 1
        reply = shard.apply(Request(op="advance", time=10.0))
        assert reply["ok"]
        stats = shard.stats()
        assert stats["open_bins"] == 0
        assert stats["departures"] == 1
        assert stats["cost"] == pytest.approx(2.0)

    def test_advance_backwards_rejected(self):
        shard = PlacementShard(0, FirstFit())
        shard.apply(Request(op="advance", time=5.0))
        reply = shard.apply(Request(op="advance", time=1.0))
        assert reply["error"] == "out-of-order"

    def test_unexpected_failure_becomes_internal_error(self):
        class Exploding:
            clairvoyant = True

            def reset(self):
                pass

            def place(self, item, sim):
                raise RuntimeError("kaboom")

        shard = PlacementShard(0, Exploding())
        reply = shard.apply(arrive(1, 0.0, 1.0, 0.5))
        assert not reply["ok"]
        assert reply["error"] == "internal"
        assert "kaboom" in reply["message"]

    def test_wire_parsed_request_round_trip(self):
        shard = PlacementShard(0, FirstFit())
        req = parse_request(
            '{"op": "arrive", "id": 5, "arrival": 0, "size": 0.25, '
            '"departure": 8}'
        )
        assert shard.apply(req)["ok"]


class TestWorker:
    def test_worker_preserves_queue_order_and_sets_futures(self):
        async def main():
            shard = PlacementShard(0, FirstFit())
            shard.start()
            loop = asyncio.get_running_loop()
            jobs = []
            for k in range(6):
                fut = loop.create_future()
                jobs.append(fut)
                await shard.queue.put(
                    [(arrive(k, float(k), k + 1.5, 0.9), fut, None)]
                )
            replies = [await fut for fut in jobs]
            await shard.stop()
            return replies

        replies = asyncio.run(main())
        assert all(r["ok"] for r in replies)
        # 0.9-size items never share: bins open in arrival order
        assert [r["bin"] for r in replies] == sorted(
            r["bin"] for r in replies
        )

    def test_stop_processes_backlog_first(self):
        async def main():
            shard = PlacementShard(0, FirstFit())
            loop = asyncio.get_running_loop()
            futs = []
            for k in range(4):
                fut = loop.create_future()
                futs.append(fut)
                await shard.queue.put(
                    [(arrive(k, 0.0, 1.0, 0.2), fut, None)]
                )
            shard.start()
            await shard.stop()  # must drain the 4 queued jobs before exit
            assert all(f.done() for f in futs)
            return shard.stats()["items"]

        assert asyncio.run(main()) == 4


class TestShardCheckpoint:
    def test_restore_continues_bit_for_bit(self, tmp_path):
        # two shards fed identically, one through a checkpoint boundary:
        # their remaining decision streams must be identical
        reference = PlacementShard(0, FirstFit())
        cut = PlacementShard(0, FirstFit())
        head = [arrive(k, float(k) / 2, float(k) / 2 + 3.0, 0.3)
                for k in range(20)]
        tail = [arrive(20 + k, 10.0 + k / 2, 14.0 + k / 2, 0.3)
                for k in range(20)]
        for req in head:
            assert reference.apply(req)["ok"]
            assert cut.apply(req)["ok"]
        path = cut.checkpoint(tmp_path / "shard.ckpt")
        restored = PlacementShard.restore(0, path)
        def decisions(replies):
            # drop the one wall-clock field; everything else is logical
            return [
                {k: v for k, v in r.items() if k != "latency_us"}
                for r in replies
            ]

        tail_a = decisions(reference.apply(req) for req in tail)
        tail_b = decisions(restored.apply(req) for req in tail)
        assert tail_a == tail_b
        assert restored.accepted == 40
        ref_stats = reference.stats()
        res_stats = restored.stats()
        for key in ("items", "departures", "open_bins", "bins_opened",
                    "max_open", "cost", "time", "accepted"):
            assert res_stats[key] == ref_stats[key], key

    def test_adaptive_ids_survive_restore(self, tmp_path):
        shard = PlacementShard(0, FirstFit(clairvoyant=False))
        shard.apply(arrive("a", 0.0, None, 0.5))
        shard.apply(arrive("b", 0.0, None, 0.3))
        path = shard.checkpoint(tmp_path / "shard.ckpt")
        restored = PlacementShard.restore(0, path)
        assert restored.stats()["live_adaptive"] == 2
        assert restored.apply(
            Request(op="depart", id="a", time=1.0)
        )["ok"]
        # unknown ids still rejected after restore
        assert restored.apply(
            Request(op="depart", id="zz", time=1.0)
        )["error"] == "unknown-item"

    def test_sidecar_written_next_to_checkpoint(self, tmp_path):
        shard = PlacementShard(3, FirstFit())
        shard.apply(arrive(1, 0.0, 1.0, 0.5))
        path = shard.checkpoint(tmp_path / "s.ckpt")
        sidecar = path.with_suffix(path.suffix + ".meta.json")
        assert sidecar.exists()
        import json

        meta = json.loads(sidecar.read_text())
        assert meta["shard"] == 3
        assert meta["accepted"] == 1
