"""The placement server end-to-end: real sockets, in-process loop."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import (
    PlacementClient,
    PlacementServer,
    ServeConfig,
)
from repro.serve.protocol import encode


def run(coro):
    return asyncio.run(coro)


async def started(config: ServeConfig) -> PlacementServer:
    server = PlacementServer(config)
    await server.start()
    return server


class TestRoundTrip:
    def test_ping_stats_arrive(self):
        async def main():
            server = await started(ServeConfig())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            pong = await client.ping()
            assert pong["ok"] and pong["v"] == 1
            reply = await client.arrive(1, arrival=0.0, departure=4.0,
                                        size=0.5)
            assert reply["ok"] and reply["opened"] and reply["shard"] == 0
            stats = await client.stats()
            assert stats["totals"]["accepted"] == 1
            assert stats["totals"]["open_bins"] == 1
            assert stats["algorithm"] == "HybridAlgorithm"
            await client.aclose()
            await server.drain()

        run(main())

    def test_pipelined_replies_correlate_by_seq(self):
        async def main():
            server = await started(ServeConfig(shards=4))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            futures = [
                client.submit(
                    {"op": "arrive", "id": k, "tenant": f"t{k}",
                     "arrival": 0.0, "departure": 1.0, "size": 0.5}
                )
                for k in range(40)
            ]
            await client.drain_writes()
            replies = await asyncio.gather(*futures)
            assert all(r["ok"] for r in replies)
            assert [r["id"] for r in replies] == [str(k) for k in range(40)]
            # several shards actually participated
            assert len({r["shard"] for r in replies}) > 1
            await client.aclose()
            await server.drain()

        run(main())

    def test_same_tenant_same_shard(self):
        async def main():
            server = await started(ServeConfig(shards=4))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            shards = set()
            for k in range(10):
                reply = await client.arrive(
                    k, arrival=float(k), size=0.3, departure=k + 1.0,
                    tenant="sticky",
                )
                shards.add(reply["shard"])
            assert len(shards) == 1
            await client.aclose()
            await server.drain()

        run(main())

    def test_advance_broadcasts_to_every_shard(self):
        async def main():
            server = await started(ServeConfig(shards=3))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(6):
                await client.arrive(k, arrival=0.0, departure=2.0,
                                    size=0.4, tenant=f"t{k}")
            reply = await client.advance(5.0)
            assert reply["ok"] and reply["shards"] == 3
            stats = await client.stats()
            assert stats["totals"]["open_bins"] == 0
            assert stats["totals"]["departures"] == 6
            await client.aclose()
            await server.drain()

        run(main())


class TestWireErrors:
    async def raw_exchange(self, server, *lines: bytes):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        for line in lines:
            writer.write(line)
        await writer.drain()
        replies = [
            json.loads(await reader.readline()) for _ in lines if line
        ]
        writer.close()
        await writer.wait_closed()
        return replies

    def test_garbage_line_gets_structured_reply_and_keeps_connection(self):
        async def main():
            server = await started(ServeConfig())
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"this is not json\n")
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False and reply["error"] == "bad-json"
            # connection still alive: a valid request works afterwards
            writer.write(encode({"op": "ping", "seq": 2}))
            reply = json.loads(await reader.readline())
            assert reply["ok"] is True and reply["seq"] == 2
            writer.close()
            await writer.wait_closed()
            await server.drain()

        run(main())

    def test_blank_lines_are_skipped(self):
        async def main():
            server = await started(ServeConfig())
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"\n  \n" + encode({"op": "ping", "seq": 1}))
            reply = json.loads(await reader.readline())
            assert reply["seq"] == 1
            writer.close()
            await writer.wait_closed()
            await server.drain()

        run(main())

    def test_unknown_algorithm_rejected_at_construction(self):
        with pytest.raises(ValueError, match="Sorter"):
            PlacementServer(ServeConfig(algorithm="Sorter"))

    def test_error_codes_counted_in_totals(self):
        async def main():
            server = await started(ServeConfig())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            reply = await client.arrive(1, arrival=5.0, departure=9.0,
                                        size=0.5)
            assert reply["ok"]
            reply = await client.arrive(2, arrival=1.0, departure=2.0,
                                        size=0.5)
            assert reply["error"] == "out-of-order"
            stats = await client.stats()
            assert stats["totals"]["error_codes"] == {"out-of-order": 1}
            await client.aclose()
            await server.drain()

        run(main())


class TestBackpressure:
    def test_full_queue_answers_overloaded_with_retry_after(self):
        async def main():
            server = await started(ServeConfig(max_queue=2))
            # stall the single shard so its queue backs up
            blocker = asyncio.Event()

            async def stall():
                await blocker.wait()

            shard = server.shards[0]
            await shard.queue.put([])  # wake-up job: empty batch
            real_get = shard.queue.get

            async def slow_get():
                job = await real_get()
                if not blocker.is_set():
                    await blocker.wait()
                return job

            shard.queue.get = slow_get
            client = await PlacementClient.connect("127.0.0.1", server.port)
            futures = []
            for k in range(6):
                futures.append(
                    client.submit(
                        {"op": "arrive", "id": k, "arrival": 0.0,
                         "departure": 1.0, "size": 0.1}
                    )
                )
                await client.drain_writes()
                await asyncio.sleep(0.005)
            blocker.set()
            replies = await asyncio.gather(*futures)
            rejected = [r for r in replies if not r.get("ok")]
            assert rejected, "expected overloaded replies"
            assert {r["error"] for r in rejected} == {"overloaded"}
            assert all(r["retry_after"] > 0 for r in rejected)
            accepted = [r for r in replies if r.get("ok")]
            assert accepted, "some requests must still be served"
            await client.aclose()
            shard.queue.get = real_get
            await server.drain()

        run(main())


class TestDrain:
    def test_draining_refuses_new_work_but_answers_stats(self):
        async def main():
            server = await started(ServeConfig())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            await client.arrive(1, arrival=0.0, departure=2.0, size=0.5)
            server.draining = True  # freeze the flag without closing yet
            reply = await client.arrive(2, arrival=1.0, departure=2.0,
                                        size=0.5)
            assert reply["error"] == "draining"
            stats = await client.stats()
            assert stats["ok"] and stats["draining"] is True
            await client.aclose()
            server.draining = False
            await server.drain()

        run(main())

    def test_drain_flushes_pending_microbatches(self):
        async def main():
            server = await started(
                ServeConfig(batch_max=64, batch_delay=30.0)
            )
            client = await PlacementClient.connect("127.0.0.1", server.port)
            futures = [
                client.submit(
                    {"op": "arrive", "id": k, "arrival": 0.0,
                     "departure": 1.0, "size": 0.2}
                )
                for k in range(5)
            ]
            await client.drain_writes()
            await asyncio.sleep(0.05)
            # far below batch_max and far before the age bound: the
            # requests are parked in the batcher, replies pending
            assert sum(f.done() for f in futures) == 0
            await server.drain()
            replies = await asyncio.gather(*futures)
            assert all(r["ok"] for r in replies)
            assert server.totals()["accepted"] == 5
            await client.aclose()

        run(main())

    def test_drain_is_idempotent(self):
        async def main():
            server = await started(ServeConfig())
            await server.drain()
            await server.drain()
            assert server.drained.is_set()

        run(main())

    def test_ledger_record_written_on_drain(self, tmp_path):
        async def main():
            server = await started(
                ServeConfig(ledger_dir=tmp_path / "ledger")
            )
            client = await PlacementClient.connect("127.0.0.1", server.port)
            await client.arrive(1, arrival=0.0, departure=2.0, size=0.5)
            await client.aclose()
            await server.drain()
            return server.ledger_path

        path = run(main())
        record = json.loads(path.read_text())
        assert record["kind"] == "serve"
        assert record["algorithm"] == "HybridAlgorithm"
        assert record["config"]["shards"] == 1
        assert record["config"]["resumed"] is False
        assert record["metrics"]["service"]["accepted"] == 1
        assert "request_latency" in record["metrics"]["timings"]


class TestCheckpointResume:
    """Kill a server mid-stream; the resumed one must not miss a beat."""

    @staticmethod
    async def feed(client, uids, tenant="t"):
        replies = []
        for uid in uids:
            replies.append(
                await client.arrive(
                    uid, arrival=float(uid), departure=uid + 5.0,
                    size=0.35, tenant=tenant,
                )
            )
        return replies

    def test_drain_then_resume_continues_bit_for_bit(self, tmp_path):
        async def main():
            ckpt_dir = tmp_path / "ckpts"
            # reference: one uninterrupted server over all 30 items
            ref = await started(ServeConfig(shards=2))
            ref_client = await PlacementClient.connect(
                "127.0.0.1", ref.port
            )
            ref_replies = await self.feed(ref_client, range(30), "a")
            ref_stats = await ref_client.stats()
            await ref_client.aclose()
            await ref.drain()

            # interrupted twin: drain (checkpoint) after 18, then resume
            first = await started(
                ServeConfig(shards=2, checkpoint_dir=ckpt_dir)
            )
            client = await PlacementClient.connect("127.0.0.1", first.port)
            head = await self.feed(client, range(18), "a")
            await client.aclose()
            await first.drain()
            assert sorted(p.name for p in ckpt_dir.glob("*.ckpt")) == [
                "shard-0.ckpt", "shard-1.ckpt",
            ]

            second = await started(
                ServeConfig(
                    shards=2, checkpoint_dir=ckpt_dir, resume=True
                )
            )
            client = await PlacementClient.connect(
                "127.0.0.1", second.port
            )
            tail = await self.feed(client, range(18, 30), "a")
            stats = await client.stats()
            await client.aclose()
            await second.drain()
            return ref_replies, ref_stats, head + tail, stats

        ref_replies, ref_stats, replies, stats = run(main())

        def logical(rs):
            # seq is client-connection bookkeeping, latency is wall-clock;
            # everything else is the placement decision itself
            return [
                {k: v for k, v in r.items()
                 if k not in ("latency_us", "seq")}
                for r in rs
            ]

        assert logical(replies) == logical(ref_replies)
        for key in ("items", "departures", "open_bins", "bins_opened",
                    "max_open", "cost", "accepted"):
            assert stats["totals"][key] == ref_stats["totals"][key], key

    def test_no_accepted_item_is_lost_across_drain(self, tmp_path):
        async def main():
            ckpt_dir = tmp_path / "ckpts"
            first = await started(
                ServeConfig(checkpoint_dir=ckpt_dir,
                            batch_max=16, batch_delay=30.0)
            )
            client = await PlacementClient.connect(
                "127.0.0.1", first.port
            )
            # park 7 accepted-but-unflushed requests in the micro-batcher,
            # then drain: every one must be decided and checkpointed
            futures = [
                client.submit(
                    {"op": "arrive", "id": k, "arrival": 0.0,
                     "departure": 9.0, "size": 0.1}
                )
                for k in range(7)
            ]
            await client.drain_writes()
            await asyncio.sleep(0.05)
            await first.drain()
            replies = await asyncio.gather(*futures)
            assert all(r["ok"] for r in replies)
            await client.aclose()
            before = first.totals()

            resumed = await started(
                ServeConfig(checkpoint_dir=ckpt_dir, resume=True)
            )
            client = await PlacementClient.connect(
                "127.0.0.1", resumed.port
            )
            stats = await client.stats()
            await client.aclose()
            await resumed.drain()
            return before, stats

        before, stats = run(main())
        assert before["items"] == 7  # all 7 decided during the drain
        assert stats["totals"]["items"] == 7
        assert stats["totals"]["accepted"] == 7
        # the resumed fleet carries the drained fleet's state exactly
        for key in ("departures", "open_bins", "bins_opened", "max_open",
                    "cost"):
            assert stats["totals"][key] == before[key], key

    def test_resumed_server_stamps_ledger(self, tmp_path):
        async def main():
            config = ServeConfig(
                checkpoint_dir=tmp_path / "ck",
                ledger_dir=tmp_path / "ledger",
            )
            first = await started(config)
            client = await PlacementClient.connect(
                "127.0.0.1", first.port
            )
            await client.arrive(1, arrival=0.0, departure=2.0, size=0.5)
            await client.aclose()
            await first.drain()

            resumed = await started(
                ServeConfig(
                    checkpoint_dir=tmp_path / "ck",
                    ledger_dir=tmp_path / "ledger",
                    resume=True,
                )
            )
            await resumed.drain()
            return first.ledger_path, resumed.ledger_path

        fresh_path, resumed_path = run(main())
        assert json.loads(fresh_path.read_text())["config"]["resumed"] is False
        assert json.loads(resumed_path.read_text())["config"]["resumed"] is True


class TestMetrics:
    def test_merged_metrics_cover_all_shards(self):
        async def main():
            server = await started(ServeConfig(shards=3))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(12):
                await client.arrive(k, arrival=0.0, departure=1.0,
                                    size=0.5, tenant=f"t{k}")
            snap = server._metrics_snapshot()
            await client.aclose()
            await server.drain()
            return snap

        snap = run(main())
        assert snap["counters"]["arrivals"] == 12
        assert snap["service"]["accepted"] == 12
        assert snap["timings"]["request_latency"]["total"] == 12

    def test_request_latency_histogram_merges(self):
        async def main():
            server = await started(ServeConfig(shards=2))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(8):
                await client.arrive(k, arrival=0.0, departure=1.0,
                                    size=0.5, tenant=f"t{k}")
            merged = server.merged_request_latency()
            await client.aclose()
            await server.drain()
            return merged

        merged = run(main())
        assert merged.total == 8


class TestStatsQueueFields:
    """``{"op": "stats"}`` exposes live queue depth and inflight counts —
    per shard and summed in totals — so an operator (or ``serve top``)
    can see backlog without enabling telemetry."""

    def test_stats_reports_queue_depth_and_inflight(self):
        async def main():
            server = await started(ServeConfig(shards=2))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            stats = await client.stats()
            totals = stats["totals"]
            assert totals["queue_depth"] == 0
            assert totals["inflight"] == 0
            for shard in stats["per_shard"]:
                assert shard["queue_depth"] == 0
                assert shard["inflight"] == 0
            await client.aclose()
            await server.drain()

        run(main())

    def test_inflight_visible_while_a_shard_is_stalled(self):
        async def main():
            server = await started(ServeConfig())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            loop = asyncio.get_running_loop()
            server.shards[0].stall(loop.time() + 0.2)
            future = client.submit({
                "op": "arrive", "id": 1, "arrival": 0.0,
                "departure": 1.0, "size": 0.5,
            })
            await client.drain_writes()
            await asyncio.sleep(0.05)  # parked in the stalled worker
            stats = await client.stats()
            assert stats["totals"]["inflight"] == 1
            assert stats["per_shard"][0]["inflight"] == 1
            reply = await future
            assert reply["ok"]
            stats = await client.stats()
            assert stats["totals"]["inflight"] == 0
            await client.aclose()
            await server.drain()

        run(main())


class TestProfileVerb:
    """The continuous-profiling admin plane: live verb + drain artifact."""

    def test_profile_disabled_by_default(self):
        async def main():
            server = await started(ServeConfig())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            reply = await client.profile()
            await client.aclose()
            await server.drain()
            return reply

        reply = run(main())
        assert reply["ok"] and reply["enabled"] is False
        assert "stats" not in reply

    def test_live_profile_snapshot(self):
        async def main():
            server = await started(ServeConfig(sample_hz=500.0))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(200):
                await client.arrive(
                    k, arrival=0.0, departure=1.0, size=0.01
                )
            reply = await client.profile()
            await client.aclose()
            await server.drain()
            return reply

        reply = run(main())
        assert reply["ok"] and reply["enabled"] is True
        assert reply["running"] is True
        assert reply["stats"]["hz"] == 500.0
        assert reply["total_weight"] >= reply["stats"]["samples"]
        for row in reply["top"]:
            assert set(row) == {"name", "file", "line", "self", "cum"}
            assert row["cum"] >= row["self"]

    def test_drain_flushes_artifact_and_stamps_ledger(self, tmp_path):
        from repro.obs.prof import Profile

        async def main():
            server = await started(ServeConfig(
                sample_hz=500.0,
                profile_out=tmp_path / "serve.prof.json",
                ledger_dir=tmp_path / "ledger",
            ))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(100):
                await client.arrive(
                    k, arrival=0.0, departure=1.0, size=0.01
                )
            await client.aclose()
            await server.drain()
            return server

        server = run(main())
        assert server.profile_path == tmp_path / "serve.prof.json"
        profile = Profile.read(server.profile_path)
        assert profile.hz == 500.0
        record = json.loads(server.ledger_path.read_text())
        assert record["profile"]["sampler"]["hz"] == 500.0
        assert record["profile"]["artifact"] == str(server.profile_path)
        assert not server.sampler.running
