"""Micro-batcher: flush-on-size, flush-on-age, ordered, lossless."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher


def collector():
    batches = []

    async def sink(batch):
        batches.append(list(batch))

    return batches, sink


def test_default_flushes_every_add():
    async def main():
        batches, sink = collector()
        batcher = MicroBatcher(sink)
        await batcher.add(1)
        await batcher.add(2)
        return batches, batcher

    batches, batcher = asyncio.run(main())
    assert batches == [[1], [2]]
    assert batcher.batches_flushed == 2
    assert batcher.pieces == 2


def test_flush_on_size():
    async def main():
        batches, sink = collector()
        batcher = MicroBatcher(sink, max_batch=3, max_delay=60.0)
        for piece in "abc":
            await batcher.add(piece)
        return batches

    assert asyncio.run(main()) == [["a", "b", "c"]]


def test_flush_on_age():
    async def main():
        batches, sink = collector()
        batcher = MicroBatcher(sink, max_batch=1000, max_delay=0.01)
        await batcher.add("x")
        await batcher.add("y")
        assert batches == []  # below size bound, timer not fired yet
        await asyncio.sleep(0.05)
        return batches

    assert asyncio.run(main()) == [["x", "y"]]


def test_age_timer_restarts_after_flush():
    async def main():
        batches, sink = collector()
        batcher = MicroBatcher(sink, max_batch=1000, max_delay=0.01)
        await batcher.add(1)
        await asyncio.sleep(0.05)
        await batcher.add(2)
        await asyncio.sleep(0.05)
        return batches

    assert asyncio.run(main()) == [[1], [2]]


def test_manual_flush_cancels_timer_and_preserves_order():
    async def main():
        batches, sink = collector()
        batcher = MicroBatcher(sink, max_batch=1000, max_delay=60.0)
        for k in range(5):
            await batcher.add(k)
        assert len(batcher) == 5
        await batcher.flush()
        assert len(batcher) == 0
        await asyncio.sleep(0)  # a stale timer would double-flush
        return batches

    assert asyncio.run(main()) == [[0, 1, 2, 3, 4]]


def test_aclose_flushes_remainder_and_refuses_more():
    async def main():
        batches, sink = collector()
        batcher = MicroBatcher(sink, max_batch=1000, max_delay=60.0)
        await batcher.add("tail")
        await batcher.aclose()
        assert batches == [["tail"]]
        with pytest.raises(RuntimeError):
            await batcher.add("late")

    asyncio.run(main())


def test_no_work_is_dropped_across_mixed_flushes():
    async def main():
        batches, sink = collector()
        batcher = MicroBatcher(sink, max_batch=4, max_delay=0.005)
        for k in range(11):
            await batcher.add(k)
            if k == 5:
                await asyncio.sleep(0.02)  # let the age timer fire mid-run
        await batcher.aclose()
        return batches

    batches = asyncio.run(main())
    assert [x for batch in batches for x in batch] == list(range(11))


@pytest.mark.parametrize(
    "kwargs", [{"max_batch": 0}, {"max_delay": -1.0}]
)
def test_invalid_parameters(kwargs):
    with pytest.raises(ValueError):
        MicroBatcher(lambda batch: None, **kwargs)
