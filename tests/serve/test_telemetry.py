"""Request-scoped service telemetry: spans, RED metrics, admin plane."""

from __future__ import annotations

import asyncio
import json
import re

import pytest

from repro.obs.metrics import Histogram
from repro.serve import (
    PlacementClient,
    PlacementServer,
    ServeConfig,
    ServiceTelemetry,
    ShardTelemetry,
    render_service_prometheus,
)
from repro.serve.protocol import encode, parse_request
from repro.serve.telemetry import PHASES


def run(coro):
    return asyncio.run(coro)


async def started(config: ServeConfig) -> PlacementServer:
    server = PlacementServer(config)
    await server.start()
    return server


def telemetry_config(**kwargs) -> ServeConfig:
    kwargs.setdefault("telemetry", True)
    return ServeConfig(**kwargs)


# ---------------------------------------------------------------------- #
# Unit: quantiles, trace ids, sampling
# ---------------------------------------------------------------------- #
class TestHistogramQuantile:
    def test_empty_is_zero(self):
        assert Histogram((1.0, 2.0)).quantile(0.5) == 0.0

    def test_interpolates_inside_bucket(self):
        hist = Histogram((1.0, 2.0))
        for _ in range(100):
            hist.observe(1.5)
        assert 1.0 < hist.quantile(0.5) <= 2.0

    def test_monotone_in_q(self):
        hist = Histogram((0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 0.5):
            hist.observe(value)
        qs = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).quantile(1.5)


class TestTraceIds:
    def test_client_supplied_id_wins(self):
        tel = ServiceTelemetry(1)
        req = parse_request(
            encode({"op": "ping", "seq": 1, "trace": "mine"})
        )
        assert tel.trace_id(req) == "mine"

    def test_client_seq_fallback(self):
        # ``client`` is the retry-dedup identity, parsed on arrive/depart
        tel = ServiceTelemetry(1)
        req = parse_request(encode({
            "op": "arrive", "id": 1, "arrival": 0.0, "size": 0.5,
            "seq": 7, "client": "c1",
        }))
        assert tel.trace_id(req) == "c1:7"

    def test_local_counter_fallback(self):
        tel = ServiceTelemetry(1)
        req = parse_request(encode({"op": "ping", "seq": 1}))
        first = tel.trace_id(req)
        second = tel.trace_id(req)
        assert first != second
        assert first.startswith("t")


class TestSampling:
    def test_sample_one_keeps_everything(self):
        tel = ServiceTelemetry(1, sample=1.0)
        assert all(tel.sampled(f"t{i}") for i in range(50))

    def test_sample_zero_keeps_nothing(self):
        tel = ServiceTelemetry(1, sample=0.0)
        assert not any(tel.sampled(f"t{i}") for i in range(50))

    def test_decision_is_pure_in_seed_and_id(self):
        a = ServiceTelemetry(1, sample=0.5, seed=3)
        b = ServiceTelemetry(1, sample=0.5, seed=3)
        ids = [f"req-{i}" for i in range(200)]
        assert [a.sampled(t) for t in ids] == [b.sampled(t) for t in ids]

    def test_seed_changes_the_subset(self):
        a = ServiceTelemetry(1, sample=0.5, seed=0)
        b = ServiceTelemetry(1, sample=0.5, seed=99)
        ids = [f"req-{i}" for i in range(200)]
        assert [a.sampled(t) for t in ids] != [b.sampled(t) for t in ids]

    def test_fraction_roughly_honoured(self):
        tel = ServiceTelemetry(1, sample=0.25)
        kept = sum(tel.sampled(f"x{i}") for i in range(2000))
        assert 0.15 < kept / 2000 < 0.35


class TestShardTelemetryMerge:
    def test_merge_is_lossless_for_counters(self):
        a, b = ShardTelemetry(), ShardTelemetry()
        a.requests.inc(3)
        a.count_error("invalid")
        b.requests.inc(2)
        b.count_error("invalid")
        b.count_error("unavailable")
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["requests"] == 5
        assert snap["counters"]["errors"] == 3
        assert snap["counters"]["errors_invalid"] == 2
        assert snap["counters"]["errors_unavailable"] == 1

    def test_snapshot_has_every_phase(self):
        snap = ShardTelemetry().snapshot()
        assert set(snap["timings"]) == {f"phase_{p}" for p in PHASES}
        assert set(snap["quantiles"]) == {"p50_s", "p99_s"}


# ---------------------------------------------------------------------- #
# End to end: a telemetry-enabled server
# ---------------------------------------------------------------------- #
class TestServerTelemetry:
    def test_trace_echoed_and_spans_recorded(self):
        async def main():
            server = await started(telemetry_config())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            reply = await client.request({
                "op": "arrive", "id": 1, "arrival": 0.0,
                "departure": 2.0, "size": 0.5, "trace": "my-req",
            })
            assert reply["ok"] and reply["trace"] == "my-req"
            events = server.telemetry.tracer.events()
            spans = [ev for ev in events if ev.fields.get("trace")
                     == "my-req"]
            names = [ev.name for ev in spans]
            assert names == [f"req.{p}" for p in PHASES] + ["request"]
            root = spans[-1]
            assert root.depth == 0 and root.fields["op"] == "arrive"
            assert root.fields["status"] == "ok"
            # children precede the root and nest inside its window
            for child in spans[:-1]:
                assert child.depth == 1
                assert child.t_ns >= root.t_ns
            await client.aclose()
            await server.drain()

        run(main())

    def test_derived_trace_ids_are_unique(self):
        async def main():
            server = await started(telemetry_config())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            traces = set()
            for k in range(5):
                reply = await client.arrive(
                    k, arrival=0.0, departure=1.0, size=0.1
                )
                traces.add(reply["trace"])
            assert len(traces) == 5
            await client.aclose()
            await server.drain()

        run(main())

    def test_red_counters_and_phase_timings(self):
        async def main():
            server = await started(telemetry_config(shards=2))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(20):
                reply = await client.arrive(
                    k, arrival=0.0, departure=1.0, size=0.01,
                    tenant=f"t{k}",
                )
                assert reply["ok"]
            bad = await client.request({"op": "depart", "id": "missing",
                                        "time": 0.5})
            assert not bad["ok"]
            merged = server.telemetry.merged()
            assert merged.requests.value == 21
            assert merged.errors.value == 1
            assert merged.error_codes == {"unknown-item": 1}
            for phase in PHASES:
                assert merged.phases[phase].count == 21
            # both shards took traffic
            assert all(
                tel.requests.value > 0 for tel in server.telemetry.shards
            )
            await client.aclose()
            await server.drain()

        run(main())

    def test_sample_zero_counts_but_records_no_spans(self):
        async def main():
            server = await started(telemetry_config(trace_sample=0.0))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(10):
                await client.arrive(k, arrival=0.0, departure=1.0, size=0.1)
            assert server.telemetry.merged().requests.value == 10
            assert len(server.telemetry.tracer) == 0
            await client.aclose()
            await server.drain()

        run(main())

    def test_parse_errors_counted(self):
        async def main():
            server = await started(telemetry_config())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            reply = await client.request({"op": "shrug"})
            assert not reply["ok"]
            assert server.telemetry.parse_errors.value == 1
            await client.aclose()
            await server.drain()

        run(main())

    def test_batch_flush_causes_recorded(self):
        async def main():
            server = await started(
                telemetry_config(batch_max=4, batch_delay=0.05)
            )
            client = await PlacementClient.connect("127.0.0.1", server.port)
            futures = [
                client.submit({
                    "op": "arrive", "id": k, "arrival": 0.0,
                    "departure": 1.0, "size": 0.01,
                })
                for k in range(4)
            ]
            await client.drain_writes()
            await asyncio.gather(*futures)
            merged = server.telemetry.merged()
            assert merged.flush_causes.get("size", 0) >= 1
            assert merged.batch_size.total >= 1
            await client.aclose()
            await server.drain()

        run(main())

    def test_telemetry_verb_and_disabled_reply(self):
        async def main():
            # enabled: the snapshot rides in the reply
            server = await started(telemetry_config())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            await client.arrive(1, arrival=0.0, departure=1.0, size=0.5)
            reply = await client.telemetry()
            assert reply["ok"] and reply["enabled"]
            snap = reply["snapshot"]
            assert snap["merged"]["counters"]["requests"] == 1
            assert len(snap["per_shard"]) == 1
            json.dumps(snap)  # wire-safe
            await client.aclose()
            await server.drain()

            # disabled: the verb still answers, without a snapshot
            server = await started(ServeConfig())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            reply = await client.telemetry()
            assert reply["ok"] and not reply["enabled"]
            assert "snapshot" not in reply
            await client.aclose()
            await server.drain()

        run(main())

    def test_telemetry_answered_while_draining(self):
        async def main():
            server = await started(telemetry_config())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            server.draining = True  # freeze the flag without closing yet
            reply = await client.telemetry()
            assert reply["ok"] and reply["enabled"]
            refused = await client.arrive(
                1, arrival=0.0, departure=1.0, size=0.5
            )
            assert refused["error"] == "draining"
            assert server.telemetry.refusals == {"draining": 1}
            await client.aclose()
            server.draining = False
            await server.drain()

        run(main())

    def test_trace_out_written_on_drain(self, tmp_path):
        path = tmp_path / "spans.jsonl"

        async def main():
            server = await started(telemetry_config(trace_out=path))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            await client.arrive(1, arrival=0.0, departure=1.0, size=0.5)
            await client.aclose()
            await server.drain()

        run(main())
        lines = path.read_text().splitlines()
        assert len(lines) >= len(PHASES) + 1
        names = {json.loads(line)["name"] for line in lines}
        assert "request" in names and "req.kernel" in names

    def test_kernel_narration_for_sampled_requests(self):
        async def main():
            server = await started(telemetry_config())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            await client.arrive(1, arrival=0.0, departure=1.0, size=0.5)
            names = [ev.name for ev in server.telemetry.tracer.events()]
            assert "kernel.place" in names
            await client.aclose()
            await server.drain()

        run(main())

    def test_ledger_record_gains_telemetry_section(self, tmp_path):
        async def main():
            server = await started(
                telemetry_config(ledger_dir=tmp_path, algorithm="FirstFit")
            )
            client = await PlacementClient.connect("127.0.0.1", server.port)
            await client.arrive(1, arrival=0.0, departure=1.0, size=0.5)
            await client.aclose()
            await server.drain()
            return server.ledger_path

        path = run(main())
        record = json.loads(path.read_text())
        tel = record["metrics"]["telemetry"]
        assert tel["merged"]["counters"]["requests"] == 1

    def test_off_path_replies_carry_no_trace(self):
        async def main():
            server = await started(ServeConfig())
            client = await PlacementClient.connect("127.0.0.1", server.port)
            reply = await client.arrive(
                1, arrival=0.0, departure=1.0, size=0.5
            )
            assert reply["ok"] and "trace" not in reply
            assert server.telemetry is None
            await client.aclose()
            await server.drain()

        run(main())


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #
class TestPrometheus:
    def _snapshot(self):
        async def main():
            server = await started(telemetry_config(shards=2))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(8):
                await client.arrive(
                    k, arrival=0.0, departure=1.0, size=0.1, tenant=f"t{k}"
                )
            reply = await client.telemetry()
            await client.aclose()
            await server.drain()
            return reply["snapshot"]

        return run(main())

    def test_page_shape(self):
        page = render_service_prometheus(self._snapshot())
        lines = page.splitlines()
        assert 'repro_serve_requests_total{shard="0"}' in page
        assert 'repro_serve_requests_total{shard="1"}' in page
        assert "repro_serve_parse_errors_total 0" in page
        # histogram buckets are cumulative and end at +Inf
        buckets = [
            ln for ln in lines
            if ln.startswith("repro_serve_duration_bucket")
            and 'shard="0"' in ln
        ]
        assert buckets and 'le="+Inf"' in buckets[-1]
        counts = [float(ln.rsplit(" ", 1)[1]) for ln in buckets]
        assert counts == sorted(counts)
        # every sample line parses as "<name or name{labels}> <float>"
        for ln in lines:
            if ln.startswith("#"):
                continue
            _, value = ln.rsplit(" ", 1)
            float(value)

    def test_server_method_matches_module_function(self):
        snap = self._snapshot()
        tel = ServiceTelemetry(2)
        assert tel.render_prometheus(snap) == render_service_prometheus(snap)


class TestPrometheusExposition:
    """The text-exposition contract: names, labels, bucket shape."""

    _NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

    def _page(self):
        snapshot = TestPrometheus._snapshot(TestPrometheus())
        return render_service_prometheus(snapshot)

    def test_every_metric_name_is_valid(self):
        for ln in self._page().splitlines():
            if not ln or ln.startswith("#"):
                continue
            series = ln.rsplit(" ", 1)[0]
            name = series.split("{", 1)[0]
            assert self._NAME.match(name), f"invalid metric name: {name!r}"

    def test_every_bucket_series_is_monotone(self):
        groups: dict = {}
        for ln in self._page().splitlines():
            if "_bucket{" not in ln:
                continue
            series, value = ln.rsplit(" ", 1)
            name, labels = series.split("{", 1)
            labels = labels.rstrip("}")
            pairs = dict(p.split("=", 1) for p in labels.split(","))
            le = pairs.pop("le").strip('"')
            key = (name, tuple(sorted(pairs.items())))
            groups.setdefault(key, []).append((le, float(value)))
        assert groups, "no histogram buckets on the page"
        for key, buckets in groups.items():
            counts = [count for _, count in buckets]
            assert counts == sorted(counts), f"non-monotone buckets: {key}"
            assert buckets[-1][0] == "+Inf", f"missing +Inf bucket: {key}"

    def test_label_values_are_escaped(self):
        from repro.obs.export import render_prometheus

        page = render_prometheus(
            {"counters": {"requests": 3}},
            prefix="repro_serve",
            labels={"tenant": 'a"b\\c\nd'},
        )
        assert 'tenant="a\\"b\\\\c\\nd"' in page
        # the escaped line still parses as <series> <value>
        line = next(
            ln for ln in page.splitlines() if not ln.startswith("#")
        )
        assert float(line.rsplit(" ", 1)[1]) == 3.0

    def test_weird_counter_names_are_sanitised(self):
        # refusal codes become counter names; dashes and dots must be
        # folded into legal metric characters rather than leak through
        page = render_service_prometheus(
            {
                "per_shard": [],
                "parse_errors": 1,
                "refusals": {"bad-op.v2": 4},
                "uptime_s": 0.5,
            }
        )
        assert "repro_serve_refused_bad_op_v2_total 4" in page
        for ln in page.splitlines():
            if not ln or ln.startswith("#"):
                continue
            name = ln.rsplit(" ", 1)[0].split("{", 1)[0]
            assert self._NAME.match(name)


class TestCriticalPathEndToEnd:
    """A drained trace feeds the critical-path analyzer: every request
    fully attributed, and the analysis is deterministic."""

    def _trace(self, tmp_path):
        path = tmp_path / "spans.jsonl"

        async def main():
            server = await started(telemetry_config(trace_out=path, shards=2))
            client = await PlacementClient.connect("127.0.0.1", server.port)
            for k in range(50):
                await client.arrive(
                    k, arrival=0.0, departure=1.0, size=0.01,
                    tenant=f"t{k % 4}",
                )
            await client.aclose()
            await server.drain()

        run(main())
        return path

    def test_every_request_fully_attributed(self, tmp_path):
        from repro.obs.prof import analyze_trace

        report = analyze_trace(self._trace(tmp_path))
        assert report.mode == "requests"
        assert len(report.requests) == 50
        for req in report.requests:
            assert req.coverage >= 0.95
        assert report.to_dict()["summary"]["min_coverage"] >= 0.95

    def test_analysis_is_byte_identical(self, tmp_path):
        from repro.obs.prof import analyze_trace

        path = self._trace(tmp_path)
        first = json.dumps(analyze_trace(path).to_dict(), sort_keys=True)
        second = json.dumps(analyze_trace(path).to_dict(), sort_keys=True)
        assert first == second
        assert analyze_trace(path).render() == analyze_trace(path).render()
