"""`repro-dbp serve` / `loadgen` as real subprocesses: full lifecycle."""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import socket
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]


def env():
    e = dict(os.environ)
    e["PYTHONPATH"] = str(REPO / "src")
    return e


def start_server(*extra: str) -> "tuple[subprocess.Popen, int, str]":
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env(),
        text=True,
    )
    line = proc.stdout.readline()  # blocks until the server announces itself
    match = re.search(r" on [\w.]+:(\d+) ", line)
    if not match:  # pragma: no cover - startup failure diagnostics
        proc.kill()
        raise AssertionError(
            f"no port in banner {line!r}; stderr: {proc.stderr.read()}"
        )
    return proc, int(match.group(1)), line


def stop_server(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=20)
    assert proc.returncode == 0, err
    return out


def rpc(port: int, obj: dict) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        stream = sock.makefile("rwb")
        stream.write(json.dumps(obj).encode() + b"\n")
        stream.flush()
        return json.loads(stream.readline())


def loadgen(port: int, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "loadgen",
         "--port", str(port), *extra],
        capture_output=True,
        env=env(),
        text=True,
        timeout=60,
    )


class TestServeLifecycle:
    def test_serve_loadgen_drain(self, tmp_path):
        report_path = tmp_path / "report.json"
        proc, port, banner = start_server(
            "--shards", "2", "-a", "FirstFit",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
        )
        try:
            assert "FirstFit" in banner and "2 shard(s)" in banner
            result = loadgen(
                port, "-n", "300", "--rate", "20000",
                "--connections", "2", "--json", str(report_path),
            )
            assert result.returncode == 0, result.stderr
            assert "300 requests" in result.stdout
            report = json.loads(report_path.read_text())
            assert report["ok"] == 300 and report["errors"] == 0
            assert report["server_stats"]["totals"]["accepted"] == 300
        finally:
            out = stop_server(proc)
        assert "drained:" in out
        assert "302 requests" in out  # 300 arrivals + stats probe ×2
        for shard in (0, 1):
            ckpt = tmp_path / "ckpt" / f"shard-{shard}.ckpt"
            assert ckpt.exists()
            assert ckpt.with_suffix(".ckpt.meta.json").exists()

    def test_resume_restores_every_accepted_item(self, tmp_path):
        ckpt_dir = str(tmp_path / "ckpt")
        proc, port, _ = start_server(
            "-a", "FirstFit", "--checkpoint-dir", ckpt_dir,
        )
        try:
            result = loadgen(port, "-n", "100", "--rate", "20000")
            assert result.returncode == 0, result.stderr
        finally:
            stop_server(proc)

        proc, port, banner = start_server(
            "-a", "FirstFit", "--checkpoint-dir", ckpt_dir, "--resume",
        )
        try:
            assert "resumed 1 from checkpoint" in banner
            stats = rpc(port, {"op": "stats"})
            assert stats["totals"]["items"] == 100
            assert stats["totals"]["accepted"] == 100
            # the restored kernel keeps serving from where it stopped
            reply = rpc(port, {"op": "ping"})
            assert reply["ok"]
        finally:
            stop_server(proc)

    def test_unknown_algorithm_fails_fast(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "-a", "Sorter"],
            capture_output=True, env=env(), text=True, timeout=60,
        )
        assert result.returncode == 1
        assert "unknown algorithm" in result.stderr


class TestLoadgenCli:
    def test_list_workloads(self):
        result = loadgen(0, "--list-workloads")
        assert result.returncode == 0
        listed = result.stdout.split()
        assert "uniform" in listed and "poisson" in listed

    def test_unknown_workload(self):
        result = loadgen(0, "-w", "nope")
        assert result.returncode == 1
        assert "unknown workload" in result.stderr

    def test_connection_refused_is_reported(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        result = loadgen(free_port, "-n", "5")
        assert result.returncode == 1
        assert "loadgen:" in result.stderr


class TestNoIndexPropagation:
    """``--no-index`` must reach every shard's engine — fresh builds and
    the checkpoint-restore path alike (the flag is a per-boot override,
    not part of the frozen kernel state)."""

    def test_no_index_reaches_every_shard(self, tmp_path):
        ckpt_dir = str(tmp_path / "ckpt")
        proc, port, _ = start_server(
            "-a", "BestFit", "--shards", "2", "--no-index",
            "--checkpoint-dir", ckpt_dir,
        )
        try:
            result = loadgen(port, "-n", "50", "--rate", "20000")
            assert result.returncode == 0, result.stderr
            stats = rpc(port, {"op": "stats"})
            assert [s["indexed"] for s in stats["per_shard"]] == [False, False]
        finally:
            stop_server(proc)

        # resume with --no-index: the override holds on restored engines
        proc, port, _ = start_server(
            "-a", "BestFit", "--shards", "2", "--no-index",
            "--checkpoint-dir", ckpt_dir, "--resume",
        )
        try:
            stats = rpc(port, {"op": "stats"})
            assert [s["indexed"] for s in stats["per_shard"]] == [False, False]
            assert stats["totals"]["items"] == 50  # state still restored
        finally:
            stop_server(proc)

        # resume without the flag: restored engines index again
        proc, port, _ = start_server(
            "-a", "BestFit", "--shards", "2",
            "--checkpoint-dir", ckpt_dir, "--resume",
        )
        try:
            stats = rpc(port, {"op": "stats"})
            assert [s["indexed"] for s in stats["per_shard"]] == [True, True]
        finally:
            stop_server(proc)


def serve_top(port: int, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "top",
         "--port", str(port), *extra],
        capture_output=True,
        env=env(),
        text=True,
        timeout=60,
    )


class TestTelemetryCli:
    """The admin plane end to end: --telemetry, serve top, loadgen --trace."""

    def test_serve_top_renders_per_shard_red_view(self):
        proc, port, _ = start_server(
            "--telemetry", "--shards", "2", "-a", "FirstFit",
        )
        try:
            result = loadgen(port, "-n", "100", "--rate", "20000",
                             "--connections", "2")
            assert result.returncode == 0, result.stderr
            top = serve_top(port, "--iterations", "2", "--interval", "0.1")
            assert top.returncode == 0, top.stderr
            frames = top.stdout
            assert "serve top:" in frames and "sample 1" in frames
            # one row per shard, twice (two refresh frames)
            assert len(re.findall(r"^ +0 +[\d.]+ ", frames, re.M)) == 2
            assert len(re.findall(r"^ +1 +[\d.]+ ", frames, re.M)) == 2
            assert "p50_ms" in frames and "queue" in frames
        finally:
            stop_server(proc)

    def test_serve_top_prometheus_page(self):
        proc, port, _ = start_server("--telemetry", "-a", "FirstFit")
        try:
            loadgen(port, "-n", "20", "--rate", "20000")
            result = serve_top(port, "--prometheus")
            assert result.returncode == 0, result.stderr
            assert 'repro_serve_requests_total{shard="0"} ' in result.stdout
            assert 'le="+Inf"' in result.stdout
        finally:
            stop_server(proc)

    def test_serve_top_needs_telemetry_enabled(self):
        proc, port, _ = start_server("-a", "FirstFit")
        try:
            result = serve_top(port, "--iterations", "1")
            assert result.returncode == 1
            assert "telemetry disabled" in result.stderr
        finally:
            stop_server(proc)

    def test_trace_out_written_on_sigterm_drain(self, tmp_path):
        trace_path = tmp_path / "spans.jsonl"
        proc, port, _ = start_server(
            "-a", "FirstFit", "--trace-out", str(trace_path),
        )
        try:
            result = loadgen(port, "-n", "30", "--rate", "20000", "--trace")
            assert result.returncode == 0, result.stderr
            # the loadgen report includes the server's phase attribution
            assert "server:" in result.stdout
            assert "kernel:" in result.stdout
        finally:
            out = stop_server(proc)
        assert f"trace: {trace_path}" in out
        lines = trace_path.read_text().splitlines()
        names = {json.loads(line)["name"] for line in lines}
        assert "request" in names
        # loadgen --trace stamped deterministic ids; they were sampled
        traces = {
            json.loads(line)["fields"].get("trace")
            for line in lines
            if json.loads(line)["name"] == "request"
        }
        assert any(t and t.startswith("lg-") for t in traces)

    def test_loadgen_writes_ledger_record(self, tmp_path):
        ledger_dir = tmp_path / "lg-ledger"
        proc, port, _ = start_server("-a", "FirstFit")
        try:
            result = loadgen(
                port, "-n", "40", "--rate", "20000",
                "--ledger-dir", str(ledger_dir),
            )
            assert result.returncode == 0, result.stderr
            assert "ledger:" in result.stdout
        finally:
            stop_server(proc)
        records = list(ledger_dir.glob("loadgen-*.json"))
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["kind"] == "loadgen"
        assert record["algorithm"] == "FirstFit"
        assert record["metrics"]["counters"]["ok"] == 40
        assert record["metrics"]["counters"]["errors"] == 0
        assert "client_latency_ms" in record["metrics"]["timings"]

    def test_loadgen_no_ledger_flag(self, tmp_path):
        proc, port, _ = start_server("-a", "FirstFit")
        try:
            result = loadgen(port, "-n", "10", "--rate", "20000",
                             "--no-ledger")
            assert result.returncode == 0, result.stderr
            assert "ledger:" not in result.stdout
        finally:
            stop_server(proc)
