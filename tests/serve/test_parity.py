"""Service parity: a served trace matches batch ``simulate()`` exactly."""

from __future__ import annotations

from repro.engine.parity import ALIGNED_ALGORITHMS, GENERAL_ALGORITHMS
from repro.serve.parity import (
    ServiceParityReport,
    check_service_parity,
    default_service_cells,
    service_parity_suite,
)
from repro.workloads import aligned_random, uniform_random


class TestSingleCells:
    def test_first_fit_uniform(self):
        inst = uniform_random(120, 16.0, seed=3)
        report = check_service_parity("FirstFit", inst, workload="uniform")
        assert report.ok, str(report)
        assert report.n_items == 120
        assert report.errors == 0
        assert report.decisions_equal and report.opened_equal
        assert report.cost_delta == 0.0

    def test_hybrid_micro_batched(self):
        # batching must not perturb a single decision
        inst = uniform_random(100, 16.0, seed=5)
        report = check_service_parity(
            "HybridAlgorithm", inst, workload="uniform",
            batch_max=8, batch_delay=0.005,
        )
        assert report.ok, str(report)

    def test_aligned_algorithm_on_aligned_input(self):
        inst = aligned_random(32, 90, seed=1)
        report = check_service_parity("CDFF", inst, workload="aligned")
        assert report.ok, str(report)


class TestSweep:
    def test_default_cells_cover_the_registry(self):
        names = {name for name, _, _ in default_service_cells(seed=0)}
        assert set(GENERAL_ALGORITHMS) <= names
        assert set(ALIGNED_ALGORITHMS) <= names

    def test_suite_over_selected_cells(self):
        inst = uniform_random(60, 8.0, seed=2)
        cells = [
            ("FirstFit", "uniform-small", inst),
            ("NextFit", "uniform-small", inst),
        ]
        reports = service_parity_suite(cells)
        assert len(reports) == 2
        assert all(r.ok for r in reports), "\n".join(map(str, reports))


class TestReport:
    def test_mismatch_is_flagged(self):
        report = ServiceParityReport(
            algorithm="FirstFit", workload="w", n_items=10,
            batch_cost=5.0, serve_cost=6.0,
            max_open_batch=2, max_open_serve=2,
            bins_opened_batch=3, bins_opened_serve=3,
            decisions_equal=True, opened_equal=True, errors=0,
        )
        assert not report.ok
        assert "MISMATCH" in str(report)
        assert report.cost_delta == 1.0

    def test_errors_spoil_parity(self):
        report = ServiceParityReport(
            algorithm="FirstFit", workload="w", n_items=10,
            batch_cost=5.0, serve_cost=5.0,
            max_open_batch=2, max_open_serve=2,
            bins_opened_batch=3, bins_opened_serve=3,
            decisions_equal=True, opened_equal=True, errors=1,
        )
        assert not report.ok
