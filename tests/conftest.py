"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro import (
    CDFF,
    BestFit,
    ClassifyByDuration,
    FirstFit,
    HybridAlgorithm,
    Instance,
    LastFit,
    NextFit,
    RenTang,
    StaticRowsCDFF,
    WorstFit,
)

# Hypothesis profiles: "ci" derandomizes so CI failures reproduce exactly
# (select with HYPOTHESIS_PROFILE=ci; the GitHub workflow sets it).
settings.register_profile("ci", derandomize=True, deadline=None,
                          print_blob=True)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True)
def _ledger_to_tmpdir(tmp_path, monkeypatch):
    """Redirect every ledger write to the test's tmpdir.

    CLI entry points write run records by default; without this, tests
    that drive ``main()`` would litter ``.ledger/`` in the repo.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))


@pytest.fixture
def tiny_instance() -> Instance:
    """Three overlapping items, hand-checkable."""
    return Instance.from_tuples(
        [
            (0.0, 4.0, 0.5),
            (0.0, 1.0, 0.5),
            (2.0, 6.0, 0.3),
        ]
    )


@pytest.fixture
def disjoint_instance() -> Instance:
    """Items that never overlap — every algorithm should use 1 bin at a time."""
    return Instance.from_tuples(
        [
            (0.0, 1.0, 0.9),
            (1.0, 2.0, 0.9),
            (2.0, 3.0, 0.9),
        ]
    )


@pytest.fixture
def full_bin_instance() -> Instance:
    """Four items of size 0.5 alive together — exactly two bins needed."""
    return Instance.from_tuples([(0.0, 2.0, 0.5)] * 4)


def all_algorithm_factories():
    """Every general-input algorithm in the package (CDFF excluded: it
    requires aligned inputs)."""
    return [
        ("FirstFit", FirstFit),
        ("BestFit", BestFit),
        ("WorstFit", WorstFit),
        ("LastFit", LastFit),
        ("NextFit", NextFit),
        ("CBD", ClassifyByDuration),
        ("RenTang64", lambda: RenTang(64.0)),
        ("HA", HybridAlgorithm),
    ]


def aligned_algorithm_factories():
    return [
        ("CDFF", CDFF),
        ("StaticRowsCDFF", StaticRowsCDFF),
        ("FirstFit", FirstFit),
        ("HA", HybridAlgorithm),
    ]
