"""Edge-case and robustness tests across the core stack."""

import math

import numpy as np
import pytest

from repro.algorithms.anyfit import FirstFit
from repro.algorithms.hybrid import HybridAlgorithm
from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.profile import load_profile
from repro.core.simulation import simulate
from repro.core.validate import audit
from repro.offline.bounds import opt_sandwich


class TestScaleStress:
    def test_ten_thousand_items_first_fit(self):
        """A 10k-item dense stream packs, audits, and accounts correctly."""
        rng = np.random.default_rng(0)
        triples = []
        for _ in range(10_000):
            a = float(rng.uniform(0, 500))
            triples.append((a, a + float(rng.uniform(1, 16)), float(rng.uniform(0.05, 0.5))))
        inst = Instance.from_tuples(triples)
        res = simulate(FirstFit(), inst)
        audit(res)
        assert res.cost >= inst.demand - 1e-6

    def test_profile_on_large_instance(self):
        rng = np.random.default_rng(1)
        triples = []
        for _ in range(20_000):
            a = float(rng.uniform(0, 1000))
            triples.append((a, a + float(rng.uniform(0.1, 50)), float(rng.uniform(0.01, 1.0))))
        inst = Instance.from_tuples(triples)
        prof = load_profile(inst)
        assert math.isclose(prof.integral(), inst.demand, rel_tol=1e-9)


class TestDegenerateShapes:
    def test_hundred_identical_unit_items(self):
        inst = Instance.from_tuples([(0.0, 1.0, 1.0)] * 100)
        res = simulate(FirstFit(), inst)
        audit(res)
        assert res.n_bins == 100
        assert math.isclose(res.cost, 100.0)

    def test_hundred_infinitesimal_items(self):
        inst = Instance.from_tuples([(0.0, 1.0, 0.01)] * 100)
        res = simulate(FirstFit(), inst)
        assert res.n_bins == 1

    def test_chain_of_touching_items(self):
        """1000 items, each starting exactly as the previous departs."""
        triples = [(float(k), float(k + 1), 0.9) for k in range(1000)]
        inst = Instance.from_tuples(triples)
        res = simulate(FirstFit(), inst)
        audit(res)
        assert math.isclose(res.cost, 1000.0)
        assert res.max_open == 1

    def test_single_instant_burst(self):
        """300 simultaneous arrivals exercise the in-batch ordering."""
        rng = np.random.default_rng(2)
        triples = [
            (0.0, float(rng.uniform(0.5, 4)), float(rng.uniform(0.1, 1.0)))
            for _ in range(300)
        ]
        inst = Instance.from_tuples(triples)
        res = simulate(HybridAlgorithm(), inst)
        audit(res)

    def test_extreme_mu(self):
        inst = Instance.from_tuples([(0.0, 1.0, 0.5), (0.0, 2.0**40, 0.5)])
        res = simulate(HybridAlgorithm(), inst)
        audit(res)
        assert inst.mu == 2.0**40

    def test_tiny_lengths(self):
        inst = Instance.from_tuples([(0.0, 1e-9, 0.5), (0.0, 2e-9, 0.5)])
        res = simulate(FirstFit(), inst)
        audit(res)
        assert math.isclose(res.cost, 2e-9, rel_tol=1e-6)


class TestNumericRobustness:
    def test_accumulated_thirds(self):
        """300 size-1/3 items over 100 disjoint triples: no float drift."""
        triples = []
        for k in range(100):
            for _ in range(3):
                triples.append((float(k), float(k) + 1.0, 1.0 / 3.0))
        inst = Instance.from_tuples(triples)
        res = simulate(FirstFit(), inst)
        audit(res)
        assert res.max_open == 1

    def test_sandwich_consistency_on_heavy_instance(self):
        rng = np.random.default_rng(3)
        triples = [
            (float(rng.uniform(0, 10)), float(rng.uniform(10.1, 20)), 1.0)
            for _ in range(50)
        ]
        inst = Instance.from_tuples(triples)
        s = opt_sandwich(inst)
        assert s.lower <= s.upper
        # all-unit sizes: the ceil-load bound is exact at peak
        assert s.lower >= inst.demand - 1e-9

    def test_item_at_float_extremes(self):
        it = Item(1e15, 1e15 + 1.0, 0.5)
        assert math.isclose(it.length, 1.0)
