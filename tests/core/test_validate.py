"""Unit tests for :mod:`repro.core.validate` — the audit must catch
manufactured violations, not just bless good packings."""

import dataclasses

import pytest

from repro.algorithms.anyfit import FirstFit
from repro.core.bins import BinRecord
from repro.core.errors import PackingError
from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.result import PackingResult
from repro.core.simulation import simulate
from repro.core.validate import audit, audit_cost, check_feasible_bin


def good_result(tiny):
    return simulate(FirstFit(), tiny)


class TestCheckFeasibleBin:
    def test_feasible(self):
        check_feasible_bin([Item(0, 2, 0.5, uid=0), Item(0, 2, 0.5, uid=1)])

    def test_overload_detected(self):
        with pytest.raises(PackingError):
            check_feasible_bin(
                [Item(0, 2, 0.7, uid=0), Item(1, 3, 0.7, uid=1)]
            )

    def test_sequential_items_feasible(self):
        check_feasible_bin([Item(0, 1, 0.9, uid=0), Item(1, 2, 0.9, uid=1)])

    def test_custom_capacity(self):
        check_feasible_bin(
            [Item(0, 1, 1.0, uid=0), Item(0, 1, 1.0, uid=1)], capacity=2.0
        )


class TestAudit:
    def test_good_result_passes(self, tiny_instance):
        audit(good_result(tiny_instance))

    def test_missing_assignment_detected(self, tiny_instance):
        res = good_result(tiny_instance)
        bad = dataclasses.replace(
            res, assignment={k: v for k, v in res.assignment.items() if k != 0}
        )
        with pytest.raises(PackingError):
            audit(bad)

    def test_unknown_bin_detected(self, tiny_instance):
        res = good_result(tiny_instance)
        assignment = dict(res.assignment)
        assignment[0] = 12345
        with pytest.raises(PackingError):
            audit(dataclasses.replace(res, assignment=assignment))

    def test_overloaded_bin_detected(self):
        # two size-0.8 items forced into one "bin" by a forged result
        items = (Item(0, 2, 0.8, uid=0), Item(0, 2, 0.8, uid=1))
        forged = PackingResult(
            algorithm="forged",
            items=items,
            assignment={0: 0, 1: 0},
            bins=(BinRecord(0, None, 0.0, 2.0, (0, 1)),),
            departed_at={0: 2.0, 1: 2.0},
        )
        with pytest.raises(PackingError):
            audit(forged)

    def test_gap_in_busy_period_detected(self):
        # one bin "holding" two disjoint items with a gap — must be two bins
        items = (Item(0, 1, 0.5, uid=0), Item(3, 4, 0.5, uid=1))
        forged = PackingResult(
            algorithm="forged",
            items=items,
            assignment={0: 0, 1: 0},
            bins=(BinRecord(0, None, 0.0, 4.0, (0, 1)),),
            departed_at={0: 1.0, 1: 4.0},
        )
        with pytest.raises(PackingError):
            audit(forged)

    def test_wrong_open_time_detected(self):
        items = (Item(1, 2, 0.5, uid=0),)
        forged = PackingResult(
            algorithm="forged",
            items=items,
            assignment={0: 0},
            bins=(BinRecord(0, None, 0.0, 2.0, (0,)),),
            departed_at={0: 2.0},
        )
        with pytest.raises(PackingError):
            audit(forged)

    def test_empty_bin_record_detected(self, tiny_instance):
        res = good_result(tiny_instance)
        extra = res.bins + (BinRecord(999, None, 0.0, 1.0, ()),)
        with pytest.raises(PackingError):
            audit(dataclasses.replace(res, bins=extra))

    def test_duplicate_bin_uid_detected(self, tiny_instance):
        res = good_result(tiny_instance)
        with pytest.raises(PackingError):
            audit(dataclasses.replace(res, bins=res.bins + res.bins))


class TestAuditCost:
    def test_cost_value_returned(self, tiny_instance):
        res = good_result(tiny_instance)
        assert audit_cost(res) == res.cost

    def test_inconsistent_record_detected(self, tiny_instance):
        res = good_result(tiny_instance)
        rec = res.bins[0]
        # shrink the recorded close time: Σ usage no longer matches ∫ ON_t
        bad_rec = BinRecord(
            rec.uid, rec.tag, rec.opened_at, rec.closed_at, rec.item_uids
        )
        # craft a profile mismatch by duplicating the bin in the count only
        forged = dataclasses.replace(
            res,
            bins=(
                bad_rec,
                BinRecord(777, None, rec.opened_at, rec.opened_at + 0.5, (0,)),
            ),
        )
        with pytest.raises(PackingError):
            audit(forged)
