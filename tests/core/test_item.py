"""Unit tests for :mod:`repro.core.item`."""

import math

import pytest

from repro.core.errors import InvalidItemError
from repro.core.item import Item


class TestConstruction:
    def test_basic_fields(self):
        it = Item(1.0, 3.0, 0.5, uid=7)
        assert it.arrival == 1.0
        assert it.departure == 3.0
        assert it.size == 0.5
        assert it.uid == 7

    def test_unknown_departure_allowed(self):
        it = Item(0.0, None, 0.25)
        assert not it.clairvoyant

    def test_known_departure_is_clairvoyant(self):
        assert Item(0.0, 1.0, 0.5).clairvoyant

    def test_departure_must_exceed_arrival(self):
        with pytest.raises(InvalidItemError):
            Item(2.0, 2.0, 0.5)

    def test_departure_before_arrival_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(2.0, 1.0, 0.5)

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(0.0, 1.0, 0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(0.0, 1.0, -0.1)

    def test_size_above_one_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(0.0, 1.0, 1.0001)

    def test_size_exactly_one_allowed(self):
        assert Item(0.0, 1.0, 1.0).size == 1.0

    def test_nan_arrival_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(math.nan, 1.0, 0.5)

    def test_infinite_departure_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(0.0, math.inf, 0.5)

    def test_negative_arrival_allowed(self):
        # the model does not require non-negative time
        assert Item(-3.0, -1.0, 0.5).length == 2.0


class TestDerived:
    def test_length(self):
        assert Item(1.0, 5.0, 0.5).length == 4.0

    def test_length_of_unknown_departure_raises(self):
        with pytest.raises(InvalidItemError):
            _ = Item(0.0, None, 0.5).length

    def test_demand(self):
        assert Item(0.0, 4.0, 0.25).demand == 1.0

    def test_active_at_half_open(self):
        it = Item(1.0, 2.0, 0.5)
        assert not it.active_at(0.999)
        assert it.active_at(1.0)  # closed on the left
        assert it.active_at(1.999)
        assert not it.active_at(2.0)  # open on the right

    def test_active_unknown_departure(self):
        it = Item(1.0, None, 0.5)
        assert it.active_at(100.0)
        assert not it.active_at(0.5)

    def test_overlap_true(self):
        assert Item(0, 2, 0.5).overlaps(Item(1, 3, 0.5))

    def test_overlap_touching_is_false(self):
        # departure == arrival → no overlap (half-open)
        assert not Item(0, 2, 0.5).overlaps(Item(2, 3, 0.5))

    def test_overlap_disjoint_false(self):
        assert not Item(0, 1, 0.5).overlaps(Item(5, 6, 0.5))

    def test_overlap_requires_departures(self):
        with pytest.raises(InvalidItemError):
            Item(0, None, 0.5).overlaps(Item(0, 1, 0.5))


class TestTransforms:
    def test_masked_hides_departure(self):
        m = Item(0.0, 5.0, 0.5, uid=3).masked()
        assert m.departure is None
        assert m.arrival == 0.0 and m.size == 0.5 and m.uid == 3

    def test_with_departure(self):
        it = Item(0.0, 2.0, 0.5).with_departure(8.0)
        assert it.departure == 8.0

    def test_shifted(self):
        it = Item(1.0, 3.0, 0.5).shifted(10.0)
        assert (it.arrival, it.departure) == (11.0, 13.0)

    def test_shifted_unknown_departure(self):
        it = Item(1.0, None, 0.5).shifted(4.0)
        assert it.arrival == 5.0 and it.departure is None

    def test_scaled(self):
        it = Item(1.0, 3.0, 0.5).scaled(2.0)
        assert (it.arrival, it.departure) == (2.0, 6.0)
        assert it.size == 0.5  # sizes unchanged

    def test_scaled_nonpositive_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(1.0, 3.0, 0.5).scaled(0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            Item(0, 1, 0.5).arrival = 3.0  # type: ignore[misc]

    def test_str_contains_uid_and_interval(self):
        s = str(Item(0.0, 2.0, 0.25, uid=4))
        assert "r4" in s and "[0,2)" in s

    def test_str_unknown_departure(self):
        assert "?" in str(Item(0.0, None, 0.25))
