"""Unit tests for the alternative goal functions."""

import math

import pytest

from repro.algorithms.anyfit import FirstFit
from repro.core.instance import Instance
from repro.core.objectives import (
    max_bins,
    momentary_ratio,
    optimal_bins_profile,
    usage_time,
)
from repro.core.simulation import simulate


class TestUsageTime:
    def test_matches_cost(self, tiny_instance):
        res = simulate(FirstFit(), tiny_instance)
        assert usage_time(res) == res.cost


class TestMaxBins:
    def test_value(self, full_bin_instance):
        res = simulate(FirstFit(), full_bin_instance)
        assert max_bins(res) == 2

    def test_disjoint(self, disjoint_instance):
        res = simulate(FirstFit(), disjoint_instance)
        assert max_bins(res) == 1


class TestOptimalBinsProfile:
    def test_empty(self):
        prof = optimal_bins_profile(Instance([]))
        assert prof.integral() == 0.0

    def test_single_item(self):
        prof = optimal_bins_profile(Instance.from_tuples([(0, 3, 0.4)]))
        assert prof(1.0) == 1.0
        assert prof(5.0) == 0.0

    def test_two_big(self):
        inst = Instance.from_tuples([(0, 2, 0.8), (0, 2, 0.8)])
        prof = optimal_bins_profile(inst)
        assert prof(1.0) == 2.0

    def test_integral_is_opt_r(self):
        """∫ OPT_R^t dt must equal the OPT_R oracle."""
        from repro.offline.optimal import opt_repacking
        from repro.workloads.random_general import uniform_random

        inst = uniform_random(40, 8, seed=6)
        prof = optimal_bins_profile(inst)
        oracle = opt_repacking(inst)
        assert oracle.lower - 1e-6 <= prof.integral() <= oracle.upper + 1e-6


class TestMomentaryRatio:
    def test_optimal_packing_is_one(self):
        inst = Instance.from_tuples([(0, 2, 0.8), (0, 2, 0.8)])
        res = simulate(FirstFit(), inst)
        assert math.isclose(momentary_ratio(res, inst), 1.0)

    def test_detects_waste(self):
        # NextFit splits two compatible items across bins when a big one
        # sits between them
        from repro.algorithms.anyfit import NextFit

        inst = Instance.from_tuples([(0, 4, 0.3), (0, 4, 0.8), (0, 4, 0.3)])
        res = simulate(NextFit(), inst)
        assert momentary_ratio(res, inst) >= 1.5 - 1e-9

    def test_at_least_one(self):
        from repro.workloads.random_general import uniform_random

        inst = uniform_random(40, 8, seed=3)
        res = simulate(FirstFit(), inst)
        assert momentary_ratio(res, inst, max_exact=14) >= 1.0 - 1e-9
