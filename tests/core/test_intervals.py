"""Unit + property tests for the interval arithmetic kernel."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import (
    covers,
    gaps,
    intersection_measure,
    merge_intervals,
    union_measure,
)


@st.composite
def interval_lists(draw, n_max=15):
    n = draw(st.integers(min_value=0, max_value=n_max))
    out = []
    for _ in range(n):
        lo = draw(st.floats(min_value=-20, max_value=20, allow_nan=False))
        length = draw(st.floats(min_value=0.01, max_value=10, allow_nan=False))
        out.append((lo, lo + length))
    return out


class TestMerge:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlap(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_merged(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_nested(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            merge_intervals([(2, 2)])

    @given(interval_lists())
    @settings(max_examples=80, deadline=None)
    def test_merged_is_disjoint_and_sorted(self, ivs):
        merged = merge_intervals(ivs)
        for (a_lo, a_hi), (b_lo, b_hi) in zip(merged, merged[1:]):
            assert a_hi < b_lo


class TestUnionMeasure:
    def test_values(self):
        assert union_measure([(0, 1), (2, 4)]) == 3.0
        assert union_measure([(0, 2), (1, 3)]) == 3.0
        assert union_measure([]) == 0.0

    @given(interval_lists(n_max=10))
    @settings(max_examples=80, deadline=None)
    def test_subadditive(self, ivs):
        total = sum(hi - lo for lo, hi in ivs)
        u = union_measure(ivs)
        assert u <= total + 1e-9
        if ivs:
            assert u >= max(hi - lo for lo, hi in ivs) - 1e-9

    @given(interval_lists(n_max=8), interval_lists(n_max=8))
    @settings(max_examples=60, deadline=None)
    def test_inclusion_exclusion(self, a, b):
        lhs = union_measure(a + b)
        rhs = union_measure(a) + union_measure(b) - intersection_measure(a, b)
        assert math.isclose(lhs, rhs, rel_tol=1e-9, abs_tol=1e-9)


class TestIntersection:
    def test_disjoint(self):
        assert intersection_measure([(0, 1)], [(2, 3)]) == 0.0

    def test_partial(self):
        assert intersection_measure([(0, 2)], [(1, 4)]) == 1.0

    def test_multi(self):
        assert intersection_measure([(0, 10)], [(1, 2), (3, 5)]) == 3.0

    def test_symmetry(self):
        a, b = [(0, 3), (5, 7)], [(2, 6)]
        assert intersection_measure(a, b) == intersection_measure(b, a)


class TestCoversAndGaps:
    def test_covers_half_open(self):
        assert covers([(0, 1)], 0.0)
        assert not covers([(0, 1)], 1.0)

    def test_gaps(self):
        assert gaps([(0, 1), (3, 4), (4, 6)]) == [(1, 3)]

    def test_no_gaps(self):
        assert gaps([(0, 2), (1, 3)]) == []

    @given(interval_lists(n_max=10))
    @settings(max_examples=60, deadline=None)
    def test_gap_points_uncovered(self, ivs):
        for lo, hi in gaps(ivs):
            mid = (lo + hi) / 2
            assert not covers(ivs, mid)


def test_span_agrees_with_instance():
    """Instance.span must equal the interval-union measure (cross-check)."""
    from repro.workloads.random_general import uniform_random

    inst = uniform_random(100, 16, seed=12)
    direct = union_measure((it.arrival, it.departure) for it in inst)
    assert math.isclose(inst.span, direct, rel_tol=1e-12)
