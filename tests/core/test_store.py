"""Unit tests for :mod:`repro.core.store` — the columnar data plane.

The store must behave exactly like the boxed representation it
replaced: same validation messages as :class:`Item`, same instance
invariants as the old ``Instance._validate``, and loaders filling
columns must report the same line-numbered diagnostics.
"""

import math
import tracemalloc

import pytest

from repro.core.errors import InvalidInstanceError, InvalidItemError
from repro.core.instance import Instance
from repro.core.item import Item, item_view
from repro.core.store import ItemStore, validate_item_values
from repro.workloads.io import (
    iter_jsonl_stores,
    load_jsonl,
    loads_csv,
    loads_jsonl,
)


def filled(rows):
    store = ItemStore()
    for a, d, s, u in rows:
        store.append(a, d, s, u)
    return store


FOUR_ROWS = [
    (0.0, 2.0, 0.5, 10),
    (1.0, None, 0.25, 11),
    (1.0, 4.0, 1.0, 12),
    (3.5, 9.0, 0.125, 13),
]


class TestEmptyStore:
    def test_shape(self):
        store = ItemStore()
        assert len(store) == 0
        assert list(store) == []
        arr, dep, siz, uids, start, stop = store.columns()
        assert (start, stop) == (0, 0)
        assert not store.is_view

    def test_invariants_hold_vacuously(self):
        store = ItemStore()
        assert store.is_sorted()
        store.validate_release_order()
        store.sort_by_arrival()
        assert len(store.slice(0, 0)) == 0

    def test_uid_lookup_empty(self):
        with pytest.raises(KeyError):
            ItemStore().row_of_uid(0)


class TestAppend:
    def test_single_item_round_trip(self):
        store = ItemStore()
        assert store.append(1.0, 3.0, 0.5, uid=7) == 0
        assert len(store) == 1
        assert store.row(0) == (1.0, 3.0, 0.5, 7)
        assert store.item(0) == Item(1.0, 3.0, 0.5, uid=7)
        assert store[0].uid == 7
        assert store[-1] == store[0]

    def test_unknown_departure_round_trips_as_none(self):
        store = ItemStore()
        store.append(0.0, None, 0.5)
        # stored as NaN internally, surfaced as None on every view
        assert math.isnan(store.departures[0])
        assert store.row(0)[1] is None
        assert store.item(0).departure is None

    @pytest.mark.parametrize(
        "triple",
        [
            (math.nan, 2.0, 0.5),
            (math.inf, 2.0, 0.5),
            (0.0, math.nan, 0.5),
            (0.0, math.inf, 0.5),
            (2.0, 2.0, 0.5),
            (2.0, 1.0, 0.5),
            (0.0, 1.0, 0.0),
            (0.0, 1.0, -0.5),
            (0.0, 1.0, 1.5),
            (0.0, 1.0, math.nan),
        ],
    )
    def test_validation_matches_item_exactly(self, triple):
        a, d, s = triple
        with pytest.raises(InvalidItemError) as from_item:
            Item(a, d, s)
        store = ItemStore()
        with pytest.raises(InvalidItemError) as from_append:
            store.append(a, d, s)
        with pytest.raises(InvalidItemError) as from_values:
            validate_item_values(a, d, s)
        assert str(from_append.value) == str(from_item.value)
        assert str(from_values.value) == str(from_item.value)
        assert len(store) == 0

    def test_index_errors(self):
        store = filled(FOUR_ROWS)
        with pytest.raises(IndexError):
            store.item(4)
        with pytest.raises(IndexError):
            store.item(-5)


class TestExtendColumns:
    def test_bulk_matches_per_row_append(self):
        bulk = ItemStore()
        bulk.extend_columns(
            [r[0] for r in FOUR_ROWS],
            [r[1] for r in FOUR_ROWS],
            [r[2] for r in FOUR_ROWS],
            uid_start=10,
        )
        assert list(bulk) == list(filled(FOUR_ROWS))

    def test_returns_first_row_and_default_uids(self):
        store = ItemStore()
        store.append(0.0, 1.0, 0.5)
        assert store.extend_columns([2.0], [3.0], [0.5]) == 1
        assert store.row(1)[3] == -1  # append()'s default uid

    def test_bad_row_leaves_store_unchanged(self):
        store = ItemStore()
        store.append(0.0, 1.0, 0.5)
        with pytest.raises(InvalidItemError) as exc:
            store.extend_columns(
                [1.0, 2.0, 3.0], [2.0, 3.0, 4.0], [0.5, 2.0, 0.5]
            )
        assert exc.value.row == 1
        assert "size must lie in (0, 1], got 2.0" in str(exc.value)
        assert len(store) == 1  # whole batch rejected, not a prefix

    def test_explicit_nan_departure_rejected(self):
        # None means "unknown"; a parsed NaN must NOT silently become
        # "unknown" — same rule as append()/Item
        with pytest.raises(InvalidItemError) as exc:
            ItemStore().extend_columns([0.0], [math.nan], [0.5])
        assert "departure must be finite or None" in str(exc.value)
        assert exc.value.row == 0

    def test_length_mismatch(self):
        with pytest.raises(InvalidInstanceError, match="column lengths differ"):
            ItemStore().extend_columns([0.0, 1.0], [2.0], [0.5, 0.5])

    def test_rejected_on_views(self):
        view = filled(FOUR_ROWS).slice(0, 2)
        with pytest.raises(InvalidInstanceError):
            view.extend_columns([0.0], [1.0], [0.5])


class TestSlicing:
    def test_zero_copy_aliasing(self):
        root = filled(FOUR_ROWS)
        view = root.slice(1, 3)
        assert view.is_view and not root.is_view
        # shares the parent's array objects — no copies
        assert view.arrivals is root.arrivals
        assert view.sizes is root.sizes
        assert len(view) == 2
        assert view.item(0) == root.item(1)
        assert view.item(1) == root.item(2)

    def test_nested_slice_offsets(self):
        root = filled(FOUR_ROWS)
        inner = root.slice(1, 4).slice(1, 3)
        assert [it.uid for it in inner] == [12, 13]
        arr, dep, siz, uids, start, stop = inner.columns()
        assert (start, stop) == (2, 4)

    def test_window_fixed_under_root_growth(self):
        root = filled(FOUR_ROWS)
        view = root.slice(0, len(root))
        root.append(10.0, 11.0, 0.5, uid=99)
        assert len(view) == 4  # bounds were pinned at slice time
        assert len(root) == 5

    def test_views_are_read_only(self):
        view = filled(FOUR_ROWS).slice(0, 2)
        for mutate in (
            lambda: view.append(9.0, 10.0, 0.5),
            view.pop,
            view.clear,
            view.sort_by_arrival,
            view.assign_sequential_uids,
        ):
            with pytest.raises(InvalidInstanceError):
                mutate()

    def test_getitem_slice_and_step(self):
        root = filled(FOUR_ROWS)
        assert [it.uid for it in root[1:3]] == [11, 12]
        assert root[1:3].is_view
        stepped = root[::2]
        assert [it.uid for it in stepped] == [10, 12]
        assert not stepped.is_view  # strided slices copy into a root

    def test_out_of_range_slice(self):
        with pytest.raises(InvalidInstanceError):
            filled(FOUR_ROWS).slice(0, 5)


class TestUidLookup:
    def test_lookup_and_missing(self):
        store = filled(FOUR_ROWS)
        assert store.row_of_uid(12) == 2
        with pytest.raises(KeyError):
            store.row_of_uid(999)

    def test_index_invalidated_by_append(self):
        store = filled(FOUR_ROWS)
        store.row_of_uid(10)  # build the lazy index
        store.append(5.0, 6.0, 0.5, uid=77)
        assert store.row_of_uid(77) == 4

    def test_window_relative_on_views(self):
        view = filled(FOUR_ROWS).slice(2, 4)
        assert view.row_of_uid(13) == 1
        with pytest.raises(KeyError):
            view.row_of_uid(10)  # outside the window

    def test_later_duplicate_wins(self):
        store = filled(FOUR_ROWS)
        store.append(5.0, 6.0, 0.5, uid=10)
        assert store.row_of_uid(10) == 4


class TestSorting:
    def test_stable_sort_by_arrival(self):
        store = filled(
            [
                (2.0, 3.0, 0.5, 0),
                (0.0, 1.0, 0.5, 1),
                (2.0, 4.0, 0.5, 2),  # same arrival as uid 0: order kept
            ]
        )
        assert not store.is_sorted()
        store.sort_by_arrival()
        assert store.is_sorted()
        assert [it.uid for it in store] == [1, 0, 2]

    def test_sorted_input_is_noop(self):
        store = filled(FOUR_ROWS)
        cols_before = (store.arrivals, store.sizes)
        store.sort_by_arrival()
        assert (store.arrivals, store.sizes) == cols_before


class TestValidateReleaseOrder:
    def test_out_of_order(self):
        store = filled([(2.0, 3.0, 0.5, 0), (1.0, 3.0, 0.5, 1)])
        with pytest.raises(
            InvalidInstanceError, match="non-decreasing arrival order"
        ):
            store.validate_release_order()

    def test_unknown_departure(self):
        store = filled([(0.0, None, 0.5, 0)])
        with pytest.raises(
            InvalidInstanceError, match="known departures"
        ):
            store.validate_release_order()
        store.validate_release_order(require_departures=False)

    def test_duplicate_uids(self):
        store = filled([(0.0, 1.0, 0.5, 3), (0.0, 1.0, 0.5, 3)])
        with pytest.raises(InvalidInstanceError, match="duplicate item uid 3"):
            store.validate_release_order()
        store.validate_release_order(check_uids=False)


class TestItemViews:
    def test_item_view_skips_validation(self):
        # item_view is only for already-validated rows; it must not
        # re-run __post_init__ (that cost is the data plane's margin)
        it = item_view(0.0, None, 0.5, 3)
        assert it == Item(0.0, None, 0.5, uid=3)
        assert isinstance(it, Item)

    def test_from_items_round_trip(self):
        items = [Item(0.0, 2.0, 0.5, uid=4), Item(1.0, None, 0.25, uid=5)]
        assert list(ItemStore.from_items(items)) == items


class TestReassignUidsMemory:
    """reassign_uids=True must not build the O(n) duplicate-uid set.

    Sequential uids are unique by construction; the duplicate scan
    (a set holding one int per item) only pays off for caller-supplied
    uids.  Regression guard for the peak-allocation fix.
    """

    N = 100_000

    def _store(self):
        store = ItemStore()
        store.extend_columns(
            [float(i) for i in range(self.N)],
            [float(i) + 1.0 for i in range(self.N)],
            [0.5] * self.N,
            uid_start=0,
        )
        return store

    def _peak(self, store, **kwargs):
        tracemalloc.start()
        try:
            Instance.from_store(store, **kwargs)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_sequential_uid_path_allocates_no_set(self):
        store = self._store()
        peak_reassign = self._peak(store, reassign_uids=True)
        peak_checked = self._peak(store, reassign_uids=False)
        # the duplicate scan's set costs several MB at 100k items; the
        # sequential path must stay orders of magnitude below it
        assert peak_checked > 1_000_000
        assert peak_reassign < peak_checked / 10
        assert peak_reassign < 200_000


class TestLoaderLineNumbers:
    """Columnar loaders must keep the historical line-numbered errors."""

    GOOD = '{"arrival": 0.0, "departure": 2.0, "size": 0.5}'

    def test_bad_value_on_bulk_path(self):
        # well-formed JSON with an out-of-range size takes the
        # extend_columns fast path; the error must still name the line
        text = "\n".join([self.GOOD, self.GOOD, self.GOOD.replace("0.5", "2.5")])
        with pytest.raises(InvalidInstanceError, match="line 3: size must lie"):
            loads_jsonl(text)

    def test_malformed_json_falls_back_per_line(self):
        text = "\n".join([self.GOOD, "{not json}", self.GOOD])
        with pytest.raises(InvalidInstanceError, match="line 2"):
            loads_jsonl(text)

    def test_missing_key(self):
        text = "\n".join([self.GOOD, '{"arrival": 0.0, "size": 0.5}'])
        with pytest.raises(InvalidInstanceError, match="line 2"):
            loads_jsonl(text)

    def test_blank_lines_do_not_shift_numbering(self):
        text = "\n".join([self.GOOD, "", self.GOOD.replace("0.5", "-1")])
        with pytest.raises(InvalidInstanceError, match="line 3"):
            loads_jsonl(text)

    def test_streaming_stores_report_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join([self.GOOD, self.GOOD, self.GOOD.replace("2.0", "-1.0")])
        )
        with pytest.raises(InvalidInstanceError, match="line 3"):
            for _ in iter_jsonl_stores(path):
                pass

    def test_csv_reports_lines(self):
        text = "arrival,departure,size\n0.0,2.0,0.5\n0.0,2.0,nope\n"
        with pytest.raises(InvalidInstanceError, match="line 3"):
            loads_csv(text)

    def test_load_jsonl_happy_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                '{"arrival": %d, "departure": %d, "size": 0.5}' % (i, i + 2)
                for i in range(10)
            )
        )
        inst = load_jsonl(path)
        assert len(inst) == 10
        assert [it.uid for it in inst] == list(range(10))
