"""The placement kernel: the single implementation of simulation semantics.

Covers what the frontend test-suites don't: direct kernel driving (the
adversary surface), the indexed open-bin structure against its
linear-scan twin, listener callback ordering, clairvoyance masking
through both frontends, and the "exactly one masking / one commit site"
guarantee the refactor exists for.
"""

import inspect
import random

import pytest

from repro.algorithms import BestFit, FirstFit, LastFit, WorstFit
from repro.algorithms.base import OnlineAlgorithm, SimulationView
from repro.core.errors import (
    ClairvoyanceError,
    PackingError,
    SimulationError,
)
from repro.core.bins import Bin
from repro.core.item import Item
from repro.core.kernel import OpenBinIndex, PlacementKernel
from repro.core.simulation import IncrementalSimulation, simulate
from repro.engine import Engine
from repro.workloads import uniform_random


# ---------------------------------------------------------------------- #
# Direct kernel driving (the adversary surface)
# ---------------------------------------------------------------------- #
class TestKernelDriving:
    def test_release_and_finish(self):
        k = PlacementKernel(FirstFit(), record=True)
        k.release(Item(0.0, 2.0, 0.5, uid=0))
        k.release(Item(0.0, 3.0, 0.5, uid=1))
        assert k.open_bin_count == 1
        result = k.finish()
        assert result.cost == pytest.approx(3.0)
        assert result.assignment == {0: 0, 1: 0}

    def test_kernel_is_its_own_facade(self):
        seen = []

        class Probe(FirstFit):
            def place(self, item, sim):
                seen.append(sim)
                return super().place(item, sim)

        k = PlacementKernel(Probe(), record=True)
        k.release(Item(0.0, 1.0, 0.5, uid=0))
        assert seen[0] is k
        assert isinstance(k, SimulationView)

    def test_adaptive_depart(self):
        k = PlacementKernel(FirstFit(clairvoyant=False), record=True)
        k.release(Item(0.0, None, 0.5, uid=0))
        k.depart(0, 4.0)
        assert k.finish().cost == pytest.approx(4.0)

    def test_depart_scheduled_item_rejected(self):
        k = PlacementKernel(FirstFit(), record=True)
        k.release(Item(0.0, 2.0, 0.5, uid=0))
        with pytest.raises(SimulationError):
            k.depart(0, 1.0)

    def test_depart_unknown_item_rejected(self):
        k = PlacementKernel(FirstFit())
        with pytest.raises(PackingError):
            k.depart(99, 1.0)

    def test_unknown_departure_needs_nonclairvoyant(self):
        k = PlacementKernel(FirstFit())
        with pytest.raises(ClairvoyanceError):
            k.release(Item(0.0, None, 0.5, uid=0))

    def test_run_until_processes_departures(self):
        k = PlacementKernel(FirstFit())
        k.release(Item(0.0, 1.0, 0.5, uid=0))
        k.run_until(1.0)  # half-open: departs exactly at t=1
        assert k.open_bin_count == 0
        assert k.cost_so_far == pytest.approx(1.0)

    def test_advance_to_is_run_until(self):
        assert PlacementKernel.advance_to is PlacementKernel.run_until

    def test_result_without_record_rejected(self):
        k = PlacementKernel(FirstFit())
        k.release(Item(0.0, 1.0, 0.5, uid=0))
        k.drain()
        with pytest.raises(SimulationError, match="record=True"):
            k.result()

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            PlacementKernel(FirstFit(), capacity=0.0)


# ---------------------------------------------------------------------- #
# One masking site, one commit site
# ---------------------------------------------------------------------- #
class PeeksDepartures(OnlineAlgorithm):
    """Non-clairvoyant algorithm that reports any departure it can see."""

    name = "PeeksDepartures"
    clairvoyant = False

    def reset(self):
        self.leaks = []

    def place(self, item, sim):
        if item.departure is not None:
            self.leaks.append(("placed", item.uid, item.departure))
        for b in sim.open_bins:
            for it in b.contents:
                if it.departure is not None:
                    self.leaks.append(("visible", it.uid, it.departure))
        found = sim.first_fit(item)
        return found if found is not None else sim.open_bin()


class TestMaskingSingleSite:
    @pytest.mark.parametrize("frontend", ["batch", "engine", "kernel"])
    def test_nonclairvoyant_never_observes_departures(self, frontend):
        inst = uniform_random(200, 16, seed=3)
        algo = PeeksDepartures()
        if frontend == "batch":
            simulate(algo, inst)
        elif frontend == "engine":
            eng = Engine(algo)
            for it in inst:
                eng.feed(it)
            eng.finish()
        else:
            k = PlacementKernel(algo)
            for it in inst:
                k.release(it)
            k.drain()
        assert algo.leaks == []

    def test_masking_logic_lives_only_in_kernel(self):
        """The refactor's grep-level contract: the frontends contain no
        clairvoyance masking and no pending-bin commit of their own."""
        import repro.core.kernel as kernel_mod
        import repro.core.simulation as sim_mod
        import repro.engine.loop as loop_mod

        for mod in (sim_mod, loop_mod):
            src = inspect.getsource(mod)
            # the masking decision (getattr on the "clairvoyant" flag)
            assert '"clairvoyant"' not in src, mod.__name__
            # the pending-bin commit protocol
            assert "_pending_bin" not in src, mod.__name__
            assert ".masked()" not in src, mod.__name__
            # the departure heap
            assert "heappush" not in src, mod.__name__
        assert not hasattr(sim_mod, "_masking")
        kernel_src = inspect.getsource(kernel_mod)
        assert kernel_src.count('getattr(self.algorithm, "clairvoyant"') == 1

    def test_masks_departures_flag(self):
        assert PlacementKernel(FirstFit()).masks_departures is False
        assert (
            PlacementKernel(FirstFit(clairvoyant=False)).masks_departures
            is True
        )


# ---------------------------------------------------------------------- #
# The indexed open-bin structure
# ---------------------------------------------------------------------- #
def _brute(bins, size, eps=1e-9):
    """Reference answers over a {uid: residual} dict in opening order."""
    fitting = [
        (uid, res) for uid, res in bins.items() if res >= size - eps
    ]
    if not fitting:
        return None, None, None, None
    first = fitting[0][0]
    last = fitting[-1][0]
    best = min(fitting, key=lambda p: (p[1], p[0]))[0]
    worst = max(fitting, key=lambda p: (p[1], -p[0]))[0]
    return first, last, best, worst


class TestOpenBinIndex:
    def test_randomised_against_linear_scan(self):
        rng = random.Random(7)
        index = OpenBinIndex()
        bins = {}  # uid -> Bin, opening order
        uid = 0
        for _ in range(3000):
            op = rng.random()
            if op < 0.4 or not bins:
                b = Bin(uid, 1.0, 0.0)
                b._load = round(rng.uniform(0.0, 0.99), 3)
                bins[uid] = b
                index.add(b)
                uid += 1
            elif op < 0.75:
                b = bins[rng.choice(list(bins))]
                b._load = round(rng.uniform(0.0, 0.99), 3)
                index.update(b)
            else:
                key = rng.choice(list(bins))
                index.remove(bins.pop(key))
            size = rng.choice([0.05, 0.25, 0.5, 0.9, 1.01])
            residuals = {u: b.residual() for u, b in bins.items()}
            first, last, best, worst = _brute(residuals, size)
            threshold = size - 1e-9
            got_first = index.first_fit(threshold)
            got_last = index.last_fit(threshold)
            got_best = index.best_fit(threshold)
            got_worst = index.worst_fit(threshold)
            assert (got_first.uid if got_first else None) == first
            assert (got_last.uid if got_last else None) == last
            assert (got_best.uid if got_best else None) == best
            assert (got_worst.uid if got_worst else None) == worst

    def test_compaction_survives_mass_closure(self):
        index = OpenBinIndex()
        bins = []
        for uid in range(500):
            b = Bin(uid, 1.0, 0.0)
            b._load = 0.5
            bins.append(b)
            index.add(b)
        for b in bins[:499]:  # trigger repeated dead-slot compaction
            index.remove(b)
        survivor = index.first_fit(0.25)
        assert survivor is bins[499]
        assert index.last_fit(0.25) is bins[499]
        assert index.first_fit(0.75) is None

    @pytest.mark.parametrize(
        "factory", [FirstFit, BestFit, WorstFit, LastFit]
    )
    def test_indexed_matches_linear_on_real_traces(self, factory):
        inst = uniform_random(400, 32, seed=11)
        fast = simulate(factory(), inst, indexed=True)
        slow = simulate(factory(), inst, indexed=False)
        assert fast.cost == slow.cost
        assert fast.assignment == slow.assignment
        assert fast.bins == slow.bins

    def test_exact_fill_one_third(self):
        """LOAD_EPS: three 1/3 items share one bin through the index."""
        k = PlacementKernel(BestFit(), record=True)
        for uid in range(3):
            k.release(Item(0.0, 1.0, 1 / 3, uid=uid))
        assert k.open_bin_count == 1
        k.release(Item(0.0, 1.0, 0.01, uid=3))
        assert k.open_bin_count == 2
        k.finish()


# ---------------------------------------------------------------------- #
# Listener callbacks
# ---------------------------------------------------------------------- #
class _Tape:
    timed = False

    def __init__(self):
        self.events = []

    def on_advance(self, t):
        self.events.append(("advance", t))

    def on_open(self, bin_):
        self.events.append(("open", bin_.uid))

    def on_arrival(self, item, bin_, opened):
        self.events.append(("arrival", item.uid, bin_.uid, opened))

    def on_departure(self, uid, removed, bin_, t, closed, elapsed):
        self.events.append(("departure", uid, t, closed))

    def on_close(self, bin_, t, usage, peak, n_items):
        self.events.append(("close", bin_.uid, t, usage, peak, n_items))


class TestListener:
    def test_event_order_and_payloads(self):
        tape = _Tape()
        k = PlacementKernel(FirstFit(), listener=tape)
        k.release(Item(0.0, 2.0, 0.6, uid=0))
        k.release(Item(1.0, 3.0, 0.6, uid=1))
        k.drain()
        assert tape.events == [
            ("advance", 0.0),
            ("open", 0),
            ("arrival", 0, 0, True),
            ("advance", 1.0),
            ("open", 1),
            ("arrival", 1, 1, True),
            ("advance", 2.0),
            ("close", 0, 2.0, 2.0, 0.6, 1),
            ("departure", 0, 2.0, True),
            ("advance", 3.0),
            ("close", 1, 3.0, 2.0, 0.6, 1),
            ("departure", 1, 3.0, True),
        ]

    def test_pickling_drops_hooks(self):
        import pickle

        tape = _Tape()
        k = PlacementKernel(FirstFit(), listener=tape)
        k.release(Item(0.0, 2.0, 0.5, uid=0))
        clone = pickle.loads(pickle.dumps(k))
        assert clone._listener is None
        assert clone._facade is clone  # self-facade restored
        clone.release(Item(1.0, 3.0, 0.5, uid=1))
        clone.drain()
        assert clone.cost_so_far == pytest.approx(3.0)


# ---------------------------------------------------------------------- #
# Frontends are adapters
# ---------------------------------------------------------------------- #
class TestFrontendsAreAdapters:
    def test_both_frontends_satisfy_simulation_view(self):
        assert isinstance(IncrementalSimulation(FirstFit()), SimulationView)
        assert isinstance(Engine(FirstFit()), SimulationView)
        assert isinstance(PlacementKernel(FirstFit()), SimulationView)

    def test_incremental_simulation_passes_itself_as_facade(self):
        seen = []

        class Probe(FirstFit):
            def place(self, item, sim):
                seen.append(sim)
                return super().place(item, sim)

        sim = IncrementalSimulation(Probe())
        sim.release(Item(0.0, 1.0, 0.5, uid=0))
        assert seen[0] is sim

    def test_engine_passes_itself_as_facade(self):
        seen = []

        class Probe(FirstFit):
            def place(self, item, sim):
                seen.append(sim)
                return super().place(item, sim)

        eng = Engine(Probe())
        eng.feed(Item(0.0, 1.0, 0.5, uid=0))
        assert seen[0] is eng

    def test_is_open(self):
        sim = IncrementalSimulation(FirstFit())
        b = sim.release(Item(0.0, 1.0, 0.5, uid=0))
        assert sim.is_open(b.uid)
        sim.run_until(1.0)
        assert not sim.is_open(b.uid)
