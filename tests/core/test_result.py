"""Unit tests for :mod:`repro.core.result`."""

import math

import pytest

from repro.algorithms.anyfit import FirstFit
from repro.algorithms.hybrid import GN_TAG, HybridAlgorithm
from repro.core.errors import PackingError
from repro.core.instance import Instance
from repro.core.simulation import simulate


@pytest.fixture
def ff_result(tiny_instance):
    return simulate(FirstFit(), tiny_instance)


class TestAccessors:
    def test_cost_positive(self, ff_result):
        assert ff_result.cost > 0

    def test_n_bins(self, ff_result):
        assert ff_result.n_bins == 1

    def test_assignment_covers_all_items(self, ff_result):
        assert set(ff_result.assignment) == {it.uid for it in ff_result.items}

    def test_bin_of(self, ff_result):
        rec = ff_result.bin_of(0)
        assert 0 in rec.item_uids

    def test_bin_of_unknown_item(self, ff_result):
        with pytest.raises(PackingError):
            ff_result.bin_of(99)

    def test_items_of(self, ff_result):
        bin_uid = ff_result.assignment[0]
        items = ff_result.items_of(bin_uid)
        assert all(ff_result.assignment[it.uid] == bin_uid for it in items)

    def test_true_interval_scheduled(self, ff_result):
        a, d = ff_result.true_interval(0)
        assert (a, d) == (0.0, 4.0)

    def test_summary_keys(self, ff_result):
        s = ff_result.summary()
        assert {"algorithm", "n_items", "n_bins", "cost", "max_open"} <= set(s)


class TestProfiles:
    def test_profile_integral_equals_cost(self, ff_result):
        assert math.isclose(
            ff_result.open_bins_profile().integral(), ff_result.cost
        )

    def test_open_bins_at(self, full_bin_instance):
        res = simulate(FirstFit(), full_bin_instance)
        assert res.open_bins_at(1.0) == 2
        assert res.open_bins_at(5.0) == 0

    def test_max_open(self, full_bin_instance):
        res = simulate(FirstFit(), full_bin_instance)
        assert res.max_open == 2

    def test_empty_result_profile(self):
        res = simulate(FirstFit(), Instance([]))
        assert res.open_bins_profile().integral() == 0.0
        assert res.max_open == 0


class TestTags:
    def test_ha_tags_recorded(self):
        inst = Instance.from_tuples([(0, 2, 0.1), (0, 2, 0.9), (0, 2, 0.9)])
        res = simulate(HybridAlgorithm(), inst)
        tags = {rec.tag[0] for rec in res.bins}
        assert tags <= {"GN", "CD"}

    def test_bins_with_tag_and_cost_of_tag(self):
        inst = Instance.from_tuples([(0, 2, 0.1), (0, 2, 0.9), (0, 2, 0.9)])
        res = simulate(HybridAlgorithm(), inst)
        gn = res.bins_with_tag(lambda t: t and t[0] == GN_TAG)
        cd = res.bins_with_tag(lambda t: t and t[0] == "CD")
        assert len(gn) + len(cd) == res.n_bins
        assert math.isclose(
            res.cost_of_tag(lambda t: True), res.cost
        )
