"""Unit tests for :mod:`repro.core.simulation` — the simulator's contract."""

import math

import pytest

from repro.algorithms.base import OnlineAlgorithm
from repro.core.errors import (
    ClairvoyanceError,
    PackingError,
    SimulationError,
)
from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.simulation import IncrementalSimulation, simulate
from repro.core.validate import audit
from repro.algorithms.anyfit import FirstFit


class OpenAlways(OnlineAlgorithm):
    """One bin per item — the trivial upper-bound algorithm."""

    name = "OpenAlways"

    def place(self, item, sim):
        return sim.open_bin(tag="solo")


class ReturnForeignBin(OnlineAlgorithm):
    name = "ReturnForeignBin"

    def place(self, item, sim):
        from repro.core.bins import Bin

        return Bin(999, 1.0, 0.0)


class OpenTwo(OnlineAlgorithm):
    name = "OpenTwo"

    def place(self, item, sim):
        sim.open_bin()
        return sim.open_bin()


class OpenButReturnOther(OnlineAlgorithm):
    name = "OpenButReturnOther"

    def place(self, item, sim):
        if sim.open_bins:
            sim.open_bin()
            return sim.open_bins[0]
        return sim.open_bin()


class ReturnNonBin(OnlineAlgorithm):
    name = "ReturnNonBin"

    def place(self, item, sim):
        return 42  # type: ignore[return-value]


class PeeksDepartures(OnlineAlgorithm):
    """Fails the test if it ever sees a departure (non-clairvoyant honesty)."""

    name = "PeeksDepartures"
    clairvoyant = False

    def __init__(self):
        self.saw_departure = False

    def place(self, item, sim):
        if item.departure is not None:
            self.saw_departure = True
        for b in sim.open_bins:
            for it in b.contents:
                if it.departure is not None:
                    self.saw_departure = True
            if b.fits(item):
                return b
        return sim.open_bin()


class TestBasicRuns:
    def test_first_fit_tiny(self, tiny_instance):
        result = simulate(FirstFit(), tiny_instance)
        audit(result)
        assert result.cost == 6.0
        assert result.n_bins == 1

    def test_open_always_cost_is_sum_of_lengths(self, tiny_instance):
        result = simulate(OpenAlways(), tiny_instance)
        audit(result)
        assert math.isclose(
            result.cost, sum(it.length for it in tiny_instance)
        )
        assert result.n_bins == len(tiny_instance)

    def test_disjoint_items_reuse_is_impossible(self, disjoint_instance):
        # bins close on empty, so even FF uses 3 bins but cost equals span
        result = simulate(FirstFit(), disjoint_instance)
        audit(result)
        assert result.n_bins == 3
        assert math.isclose(result.cost, 3.0)

    def test_full_bins(self, full_bin_instance):
        result = simulate(FirstFit(), full_bin_instance)
        audit(result)
        assert result.n_bins == 2
        assert math.isclose(result.cost, 4.0)

    def test_empty_instance(self):
        result = simulate(FirstFit(), Instance([]))
        assert result.cost == 0.0
        assert result.n_bins == 0

    def test_capacity_parameter(self, full_bin_instance):
        result = simulate(FirstFit(), full_bin_instance, capacity=2.0)
        assert result.n_bins == 1

    def test_simulate_many(self, tiny_instance, disjoint_instance):
        from repro.core.simulation import simulate_many

        results = simulate_many(FirstFit, [tiny_instance, disjoint_instance])
        assert len(results) == 2
        assert results[0].cost == 6.0
        assert results[1].n_bins == 3


class TestProtocolViolations:
    def test_foreign_bin_rejected(self, tiny_instance):
        with pytest.raises(PackingError):
            simulate(ReturnForeignBin(), tiny_instance)

    def test_two_new_bins_rejected(self, tiny_instance):
        with pytest.raises(PackingError):
            simulate(OpenTwo(), tiny_instance)

    def test_opened_but_unused_rejected(self, tiny_instance):
        with pytest.raises(PackingError):
            simulate(OpenButReturnOther(), tiny_instance)

    def test_non_bin_return_rejected(self, tiny_instance):
        with pytest.raises(PackingError):
            simulate(ReturnNonBin(), tiny_instance)

    def test_out_of_order_release_rejected(self):
        sim = IncrementalSimulation(FirstFit())
        sim.release(Item(5.0, 6.0, 0.5, uid=0))
        with pytest.raises(SimulationError):
            sim.release(Item(1.0, 2.0, 0.5, uid=1))

    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            IncrementalSimulation(FirstFit(), capacity=0.0)


class TestClairvoyance:
    def test_clairvoyant_algorithm_rejects_unknown_departure(self):
        sim = IncrementalSimulation(FirstFit())
        with pytest.raises(ClairvoyanceError):
            sim.release(Item(0.0, None, 0.5, uid=0))

    def test_nonclairvoyant_never_sees_departures(self):
        alg = PeeksDepartures()
        sim = IncrementalSimulation(alg)
        for k in range(5):
            sim.release(Item(float(k), float(k) + 2.0, 0.4, uid=k))
        result = sim.finish()
        assert not alg.saw_departure
        audit(result)

    def test_nonclairvoyant_results_use_true_departures(self):
        result = simulate(
            FirstFit(clairvoyant=False),
            Instance.from_tuples([(0, 3, 0.5)]),
        )
        assert result.cost == 3.0


class TestAdaptiveDepartures:
    def test_explicit_departure(self):
        sim = IncrementalSimulation(FirstFit(clairvoyant=False))
        sim.release(Item(0.0, None, 0.5, uid=0))
        sim.depart(0, 4.0)
        result = sim.finish()
        assert result.cost == 4.0
        assert result.departed_at[0] == 4.0

    def test_departure_in_past_rejected(self):
        sim = IncrementalSimulation(FirstFit(clairvoyant=False))
        sim.release(Item(0.0, None, 0.5, uid=0))
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.depart(0, 1.0)

    def test_departure_of_scheduled_item_rejected(self):
        sim = IncrementalSimulation(FirstFit())
        sim.release(Item(0.0, 3.0, 0.5, uid=0))
        with pytest.raises(SimulationError):
            sim.depart(0, 1.0)

    def test_departure_of_unknown_item_rejected(self):
        sim = IncrementalSimulation(FirstFit())
        with pytest.raises(PackingError):
            sim.depart(7, 1.0)

    def test_finish_with_alive_adaptive_item_rejected(self):
        sim = IncrementalSimulation(FirstFit(clairvoyant=False))
        sim.release(Item(0.0, None, 0.5, uid=0))
        with pytest.raises(SimulationError):
            sim.finish()


class TestSemantics:
    def test_departure_processed_before_arrival(self):
        # second item of size 0.9 arrives exactly when the first departs:
        # it must fit in a NEW busy period but FF may not overload
        inst = Instance.from_tuples([(0, 2, 0.9), (2, 4, 0.9)])
        result = simulate(FirstFit(), inst)
        audit(result)
        assert result.n_bins == 2  # first bin closed at t=2

    def test_simultaneous_arrivals_in_release_order(self):
        # order matters: 0.6 then 0.5 → two bins; audit both placements
        inst = Instance.from_tuples([(0, 1, 0.6), (0, 1, 0.5)])
        result = simulate(FirstFit(), inst)
        assert result.assignment[0] != result.assignment[1]

    def test_open_bin_count_live(self):
        sim = IncrementalSimulation(FirstFit())
        assert sim.open_bin_count == 0
        sim.release(Item(0.0, 10.0, 0.9, uid=0))
        assert sim.open_bin_count == 1
        sim.release(Item(1.0, 10.0, 0.9, uid=1))
        assert sim.open_bin_count == 2
        sim.run_until(10.0)
        assert sim.open_bin_count == 0

    def test_cost_so_far_monotone(self):
        sim = IncrementalSimulation(FirstFit())
        sim.release(Item(0.0, 10.0, 0.9, uid=0))
        sim.run_until(3.0)
        c1 = sim.cost_so_far
        sim.run_until(7.0)
        c2 = sim.cost_so_far
        assert 0 < c1 < c2

    def test_run_until_backwards_rejected(self):
        sim = IncrementalSimulation(FirstFit())
        sim.release(Item(5.0, 6.0, 0.5, uid=0))
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_cost_equals_profile_integral(self, tiny_instance):
        result = simulate(FirstFit(), tiny_instance)
        assert math.isclose(
            result.cost, result.open_bins_profile().integral()
        )

    def test_bin_reuse_forbidden_after_close(self):
        class Reuser(OnlineAlgorithm):
            name = "Reuser"

            def __init__(self):
                self.stash = None

            def place(self, item, sim):
                if self.stash is not None:
                    return self.stash  # bin was closed meanwhile
                self.stash = sim.open_bin()
                return self.stash

        inst = Instance.from_tuples([(0, 1, 0.5), (2, 3, 0.5)])
        with pytest.raises(PackingError):
            simulate(Reuser(), inst)
