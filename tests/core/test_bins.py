"""Unit tests for :mod:`repro.core.bins`."""

import math

import pytest

from repro.core.bins import Bin, BinRecord
from repro.core.errors import CapacityExceededError, PackingError
from repro.core.item import Item


def make_bin(capacity=1.0, tag=None):
    return Bin(uid=0, capacity=capacity, opened_at=0.0, tag=tag)


class TestBin:
    def test_initial_state(self):
        b = make_bin(tag=("GN",))
        assert b.load == 0.0
        assert b.n_items == 0
        assert b.tag == ("GN",)
        assert b.contents == ()

    def test_add_updates_load(self):
        b = make_bin()
        b._add(Item(0, 1, 0.5, uid=1))
        assert math.isclose(b.load, 0.5)
        assert 1 in b
        assert b.n_items == 1

    def test_add_same_item_twice_rejected(self):
        b = make_bin()
        b._add(Item(0, 1, 0.5, uid=1))
        with pytest.raises(PackingError):
            b._add(Item(0, 1, 0.2, uid=1))

    def test_capacity_enforced(self):
        b = make_bin()
        b._add(Item(0, 1, 0.7, uid=1))
        with pytest.raises(CapacityExceededError):
            b._add(Item(0, 1, 0.5, uid=2))

    def test_fits_with_tolerance(self):
        b = make_bin()
        for k in range(3):
            b._add(Item(0, 1, 1.0 / 3.0, uid=k))
        assert math.isclose(b.load, 1.0)
        assert not b.fits(Item(0, 1, 0.01, uid=9))

    def test_exact_fill_with_thirds(self):
        b = make_bin()
        b._add(Item(0, 1, 1 / 3, uid=0))
        b._add(Item(0, 1, 1 / 3, uid=1))
        assert b.fits(Item(0, 1, 1 / 3, uid=2))

    def test_residual(self):
        b = make_bin()
        b._add(Item(0, 1, 0.3, uid=0))
        assert math.isclose(b.residual(), 0.7)

    def test_remove(self):
        b = make_bin()
        b._add(Item(0, 1, 0.5, uid=1))
        removed = b._remove(1)
        assert removed.uid == 1
        assert b.load == 0.0
        assert b.n_items == 0

    def test_remove_unknown_rejected(self):
        with pytest.raises(PackingError):
            make_bin()._remove(99)

    def test_empty_bin_load_snaps_to_zero(self):
        b = make_bin()
        # accumulate float noise then empty
        for k in range(10):
            b._add(Item(0, 1, 0.1, uid=k))
        for k in range(10):
            b._remove(k)
        assert b.load == 0.0

    def test_custom_capacity(self):
        b = make_bin(capacity=2.0)
        b._add(Item(0, 1, 1.0, uid=0))
        assert b.fits(Item(0, 1, 1.0, uid=1))

    def test_repr(self):
        assert "Bin(uid=0" in repr(make_bin())


class TestBinRecord:
    def test_usage(self):
        rec = BinRecord(0, None, 1.0, 5.0, (1, 2))
        assert rec.usage == 4.0

    def test_fields(self):
        rec = BinRecord(3, ("CD", (1, 0)), 0.0, 2.0, (7,), peak_load=0.9)
        assert rec.uid == 3
        assert rec.tag == ("CD", (1, 0))
        assert rec.item_uids == (7,)
        assert rec.peak_load == 0.9
