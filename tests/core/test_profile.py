"""Unit tests for :mod:`repro.core.profile`."""

import math

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.profile import LoadProfile, load_profile, step_function_integral


def profile_of(*triples):
    return load_profile(Instance.from_tuples(list(triples)))


class TestLoadProfileConstruction:
    def test_empty(self):
        prof = load_profile([])
        assert prof.integral() == 0.0
        assert prof.support_measure() == 0.0
        assert prof(0.0) == 0.0

    def test_single_item(self):
        prof = profile_of((0, 2, 0.5))
        assert list(prof.breakpoints) == [0, 2]
        assert list(prof.values) == [0.5]

    def test_two_overlapping(self):
        prof = profile_of((0, 2, 0.5), (1, 3, 0.25))
        assert list(prof.breakpoints) == [0, 1, 2, 3]
        assert np.allclose(prof.values, [0.5, 0.75, 0.25])

    def test_departure_meets_arrival_nets_out(self):
        prof = profile_of((0, 1, 0.5), (1, 2, 0.5))
        assert np.allclose(prof.values, [0.5, 0.5])

    def test_unknown_departure_rejected(self):
        with pytest.raises(InvalidInstanceError):
            load_profile([Item(0, None, 0.5)])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(InvalidInstanceError):
            LoadProfile(np.asarray([0.0, 1.0]), np.asarray([1.0, 2.0]))

    def test_non_increasing_breakpoints_rejected(self):
        with pytest.raises(InvalidInstanceError):
            LoadProfile(np.asarray([0.0, 0.0]), np.asarray([1.0]))


class TestEvaluation:
    def test_call_right_continuous(self):
        prof = profile_of((0, 2, 0.5), (2, 4, 0.25))
        assert prof(2.0) == 0.25  # right-continuous at the jump

    def test_call_outside_support(self):
        prof = profile_of((0, 2, 0.5))
        assert prof(-1.0) == 0.0
        assert prof(2.0) == 0.0
        assert prof(100.0) == 0.0

    def test_integral(self):
        prof = profile_of((0, 2, 0.5), (1, 3, 0.25))
        assert math.isclose(prof.integral(), 0.5 * 1 + 0.75 * 1 + 0.25 * 1)

    def test_integral_equals_demand(self, tiny_instance):
        prof = load_profile(tiny_instance)
        assert math.isclose(prof.integral(), tiny_instance.demand)

    def test_ceil_integral(self):
        prof = profile_of((0, 2, 0.5), (0, 2, 0.6))
        assert math.isclose(prof.ceil_integral(), 2 * 2.0)

    def test_ceil_integral_exact_integer_not_rounded_up(self):
        # ten items of 0.1: load is exactly 1.0 → ceil must be 1, not 2
        prof = profile_of(*[(0, 1, 0.1)] * 10)
        assert math.isclose(prof.ceil_integral(), 1.0)

    def test_support_measure_with_gap(self):
        prof = profile_of((0, 1, 0.5), (3, 5, 0.5))
        assert math.isclose(prof.support_measure(), 3.0)

    def test_max(self):
        prof = profile_of((0, 2, 0.5), (1, 3, 0.4))
        assert math.isclose(prof.max(), 0.9)

    def test_durations(self):
        prof = profile_of((0, 1, 0.5), (1, 4, 0.5))
        assert np.allclose(prof.durations, [1.0, 3.0])

    def test_map(self):
        prof = profile_of((0, 2, 0.4))
        doubled = prof.map(lambda v: 2 * v)
        assert math.isclose(doubled.integral(), 2 * prof.integral())


class TestRestricted:
    def test_restrict_inside(self):
        prof = profile_of((0, 4, 0.5))
        sub = prof.restricted(1.0, 3.0)
        assert math.isclose(sub.integral(), 1.0)

    def test_restrict_outside_is_zero(self):
        prof = profile_of((0, 1, 0.5))
        sub = prof.restricted(5.0, 6.0)
        assert sub.integral() == 0.0

    def test_restrict_partial_overlap(self):
        prof = profile_of((0, 2, 0.5), (2, 4, 1.0))
        sub = prof.restricted(1.0, 3.0)
        assert math.isclose(sub.integral(), 0.5 + 1.0)

    def test_restrict_empty_window(self):
        prof = profile_of((0, 2, 0.5))
        assert prof.restricted(3.0, 3.0).integral() == 0.0
        assert prof.restricted(5.0, 1.0).integral() == 0.0

    def test_restrict_of_empty_profile(self):
        from repro.core.profile import load_profile

        prof = load_profile([])
        assert prof.restricted(0.0, 4.0).integral() == 0.0


def test_step_function_integral():
    assert math.isclose(
        step_function_integral([0.0, 1.0, 3.0], [2.0, 1.0]), 2.0 + 2.0
    )


def test_profile_matches_pointwise_sum_random():
    rng = np.random.default_rng(3)
    triples = []
    for _ in range(50):
        a = float(rng.uniform(0, 10))
        triples.append((a, a + float(rng.uniform(0.1, 5)), float(rng.uniform(0.05, 1))))
    inst = Instance.from_tuples(triples)
    prof = load_profile(inst)
    for t in rng.uniform(-1, 16, size=40):
        assert math.isclose(
            prof(float(t)), inst.load_at(float(t)), abs_tol=1e-9
        )
