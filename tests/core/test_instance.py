"""Unit tests for :mod:`repro.core.instance`."""

import math

import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import Instance
from repro.core.item import Item


class TestConstruction:
    def test_from_tuples_sorts_by_arrival(self):
        inst = Instance.from_tuples([(5, 6, 0.5), (0, 1, 0.5)])
        assert [it.arrival for it in inst] == [0, 5]

    def test_from_tuples_stable_on_ties(self):
        inst = Instance.from_tuples([(0, 1, 0.1), (0, 2, 0.2), (0, 3, 0.3)])
        assert [it.size for it in inst] == [0.1, 0.2, 0.3]

    def test_uids_assigned_in_order(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (1, 2, 0.5)])
        assert [it.uid for it in inst] == [0, 1]

    def test_unsorted_items_rejected(self):
        items = [Item(5, 6, 0.5, uid=0), Item(0, 1, 0.5, uid=1)]
        with pytest.raises(InvalidInstanceError):
            Instance(items, reassign_uids=False)

    def test_duplicate_uids_rejected(self):
        items = [Item(0, 1, 0.5, uid=0), Item(1, 2, 0.5, uid=0)]
        with pytest.raises(InvalidInstanceError):
            Instance(items, reassign_uids=False)

    def test_unknown_departure_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([Item(0, None, 0.5)])

    def test_empty_instance(self):
        inst = Instance([])
        assert len(inst) == 0
        assert inst.span == 0.0
        assert inst.demand == 0.0

    def test_sequence_protocol(self, tiny_instance):
        assert len(tiny_instance) == 3
        assert tiny_instance[0].arrival == 0.0
        assert isinstance(tiny_instance[0:2], Instance)
        assert len(tiny_instance[0:2]) == 2

    def test_equality_and_hash(self):
        a = Instance.from_tuples([(0, 1, 0.5)])
        b = Instance.from_tuples([(0, 1, 0.5)])
        assert a == b
        assert hash(a) == hash(b)

    def test_repr(self, tiny_instance):
        assert "Instance(" in repr(tiny_instance)


class TestStats:
    def test_mu(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (0, 8, 0.5)])
        assert inst.mu == 8.0

    def test_mu_single_item(self):
        assert Instance.from_tuples([(0, 3, 0.5)]).mu == 1.0

    def test_demand(self, tiny_instance):
        # 4*0.5 + 1*0.5 + 4*0.3
        assert math.isclose(tiny_instance.demand, 2.0 + 0.5 + 1.2)

    def test_span_contiguous(self, tiny_instance):
        assert tiny_instance.span == 6.0

    def test_span_with_gap(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (5, 7, 0.5)])
        assert inst.span == 3.0

    def test_span_departure_meets_arrival(self):
        # half-open: [0,2) then [2,4) → contiguous span 4
        inst = Instance.from_tuples([(0, 2, 0.5), (2, 4, 0.5)])
        assert inst.span == 4.0

    def test_max_load(self):
        inst = Instance.from_tuples([(0, 2, 0.5), (1, 3, 0.4), (2, 4, 0.3)])
        assert math.isclose(inst.stats.max_load, 0.9)

    def test_max_load_departure_before_arrival(self):
        # at t=1 one departs (0.6) as another arrives (0.5): peak is 0.6
        inst = Instance.from_tuples([(0, 1, 0.6), (1, 2, 0.5)])
        assert math.isclose(inst.stats.max_load, 0.6)

    def test_load_at(self, tiny_instance):
        assert math.isclose(tiny_instance.load_at(0.5), 1.0)
        assert math.isclose(tiny_instance.load_at(3.0), 0.8)
        assert tiny_instance.load_at(10.0) == 0.0

    def test_active_at_half_open(self):
        inst = Instance.from_tuples([(0, 2, 0.5)])
        assert inst.active_at(0.0) and not inst.active_at(2.0)

    def test_total_size(self, tiny_instance):
        assert math.isclose(tiny_instance.stats.total_size, 1.3)


class TestTransforms:
    def test_shifted(self, tiny_instance):
        shifted = tiny_instance.shifted(10.0)
        assert shifted[0].arrival == 10.0
        assert shifted.span == tiny_instance.span

    def test_scaled_preserves_mu(self, tiny_instance):
        assert math.isclose(tiny_instance.scaled(3.0).mu, tiny_instance.mu)

    def test_normalized_min_length_one(self):
        inst = Instance.from_tuples([(0, 0.5, 0.5), (0, 4, 0.5)])
        norm = inst.normalized()
        assert math.isclose(min(it.length for it in norm), 1.0)
        assert math.isclose(norm.mu, inst.mu)

    def test_normalized_empty(self):
        assert len(Instance([]).normalized()) == 0

    def test_concat(self):
        a = Instance.from_tuples([(0, 1, 0.5)])
        b = Instance.from_tuples([(2, 3, 0.5)])
        c = a.concat(b)
        assert len(c) == 2
        assert c.span == 2.0

    def test_map_resorts(self):
        inst = Instance.from_tuples([(0, 1, 0.5), (5, 6, 0.5)])
        flipped = inst.map(lambda it: it.shifted(-it.arrival * 2))
        assert [it.arrival for it in flipped] == sorted(
            it.arrival for it in flipped
        )
