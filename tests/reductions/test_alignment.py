"""Unit tests for the Section 3/5 reductions."""

import math

import pytest

from repro.algorithms.base import item_type
from repro.core.errors import AlignmentError
from repro.core.instance import Instance
from repro.reductions.alignment import (
    align_departures,
    assert_aligned,
    is_aligned,
    partition_aligned,
)
from repro.workloads.aligned import aligned_random, binary_input


class TestAlignDepartures:
    def test_departure_rounded_up(self):
        # item [0, 3): class 2, window c=0 → departure becomes 4
        inst = Instance.from_tuples([(0, 3, 0.5)])
        red = align_departures(inst)
        assert red[0].departure == 4.0

    def test_arrival_unchanged(self):
        inst = Instance.from_tuples([(1.5, 3, 0.5)])
        red = align_departures(inst)
        assert red[0].arrival == 1.5

    def test_length_grows_at_most_4x(self):
        import numpy as np

        rng = np.random.default_rng(2)
        triples = []
        for _ in range(60):
            a = float(rng.uniform(0, 50))
            triples.append((a, a + float(rng.uniform(1, 32)), 0.1))
        inst = Instance.from_tuples(triples)
        red = align_departures(inst)
        for orig, new in zip(inst, sorted(red, key=lambda r: r.uid)):
            assert new.length <= 4 * orig.length + 1e-9
            assert new.departure >= orig.departure - 1e-9

    def test_same_type_departs_together(self):
        import numpy as np

        rng = np.random.default_rng(3)
        triples = []
        for _ in range(80):
            a = float(rng.uniform(0, 30))
            triples.append((a, a + float(rng.uniform(1, 16)), 0.1))
        inst = Instance.from_tuples(triples)
        red = align_departures(inst)
        by_type: dict = {}
        for orig, new in zip(inst, sorted(red, key=lambda r: r.uid)):
            by_type.setdefault(item_type(orig), set()).add(new.departure)
        assert all(len(deps) == 1 for deps in by_type.values())

    def test_observations_1_and_2(self):
        """span(σ') ≤ 4 span(σ) and d(σ') ≤ 4 d(σ)."""
        inst = Instance.from_tuples(
            [(0, 2, 0.4), (1, 5, 0.3), (4, 6, 0.6), (5.5, 8, 0.2)]
        )
        red = align_departures(inst)
        assert red.span <= 4 * inst.span + 1e-9
        assert red.demand <= 4 * inst.demand + 1e-9

    def test_aligned_variant_rounds_to_next_multiple(self):
        inst = Instance.from_tuples([(4, 6.5, 0.5)])  # class 2 arriving at 4
        red = align_departures(inst, min_class=0)
        assert red[0].departure == 8.0


class TestIsAligned:
    def test_binary_input_aligned(self):
        assert is_aligned(binary_input(16))

    def test_aligned_random_aligned(self):
        assert is_aligned(aligned_random(32, 100, seed=1))

    def test_misaligned_arrival(self):
        assert not is_aligned(Instance.from_tuples([(1, 5, 0.5)]))

    def test_short_length_rejected(self):
        with pytest.raises(AlignmentError):
            assert_aligned(Instance.from_tuples([(0, 0.4, 0.5)]))

    def test_non_integer_arrival(self):
        assert not is_aligned(Instance.from_tuples([(0.5, 1.5, 0.5)]))


class TestPartition:
    def test_binary_input_single_segment(self):
        segs = partition_aligned(binary_input(16))
        assert len(segs) == 1
        assert len(segs[0]) == len(binary_input(16))

    def test_two_well_separated_segments(self):
        inst = Instance.from_tuples(
            [(0, 4, 0.5), (0, 1, 0.5), (8, 9, 0.5), (8, 16, 0.5)]
        )
        segs = partition_aligned(inst)
        assert len(segs) == 2
        assert {it.arrival for it in segs[0]} == {0}
        assert {it.arrival for it in segs[1]} == {8}

    def test_segment_horizon_uses_longest_at_start(self):
        # longest at t=0 is 4 → horizon 4; the arrival at 2 is inside
        inst = Instance.from_tuples([(0, 4, 0.5), (2, 3, 0.5), (4, 5, 0.5)])
        segs = partition_aligned(inst)
        assert len(segs) == 2
        assert len(segs[0]) == 2

    def test_items_do_not_cross_segments(self):
        inst = aligned_random(64, 200, seed=7, horizon=256)
        segs = partition_aligned(inst)
        assert sum(len(s) for s in segs) == len(inst)
        for a, b in zip(segs, segs[1:]):
            end_a = max(it.departure for it in a)
            start_b = min(it.arrival for it in b)
            assert end_a <= start_b + 1e-9

    def test_rejects_misaligned(self):
        with pytest.raises(AlignmentError):
            partition_aligned(Instance.from_tuples([(1, 5, 0.5)]))

    def test_empty(self):
        assert partition_aligned(Instance([])) == []
