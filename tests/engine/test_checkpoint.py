"""Checkpoint/restore: a resumed run must be indistinguishable from an
uninterrupted one — same final cost, bins, and assignment."""

import json
import pathlib

import pytest

from repro.algorithms import CDFF, FirstFit, HybridAlgorithm, NextFit
from repro.core.errors import CheckpointError, SimulationError
from repro.core.simulation import simulate
from repro.engine import (
    Checkpoint,
    Engine,
    EngineMetrics,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from repro.engine.checkpoint import CHECKPOINT_VERSION
from repro.workloads import binary_input, uniform_random


@pytest.mark.parametrize(
    "factory,instance",
    [
        (FirstFit, uniform_random(150, 32, seed=5)),
        (HybridAlgorithm, uniform_random(150, 32, seed=6)),
        (NextFit, uniform_random(100, 16, seed=7)),
        (CDFF, binary_input(128)),
    ],
    ids=["FirstFit", "HybridAlgorithm", "NextFit", "CDFF"],
)
@pytest.mark.parametrize("cut", [0.25, 0.5, 0.9])
def test_restore_reaches_identical_final_cost(factory, instance, cut):
    batch = simulate(factory(), instance)
    items = list(instance)
    k = max(1, int(len(items) * cut))

    eng = Engine(factory(), record=True)
    for it in items[:k]:
        eng.feed(it)
    ckpt = snapshot(eng)
    assert ckpt.arrivals == k

    resumed = restore(ckpt)
    for it in items[k:]:
        resumed.feed(it)
    summary = resumed.finish()
    assert summary.cost == batch.cost
    assert summary.max_open == batch.max_open
    assert resumed.result().assignment == batch.assignment
    assert resumed.result().bins == batch.bins


def test_snapshot_is_independent_of_live_engine():
    items = list(uniform_random(120, 16, seed=8))
    eng = Engine(HybridAlgorithm())
    for it in items[:60]:
        eng.feed(it)
    ckpt = snapshot(eng)
    # keep driving the original — must not corrupt the snapshot
    for it in items[60:]:
        eng.feed(it)
    s_live = eng.finish()

    resumed = restore(ckpt)
    for it in items[60:]:
        resumed.feed(it)
    s_resumed = resumed.finish()
    assert s_resumed.cost == s_live.cost
    assert s_resumed.bins_opened == s_live.bins_opened


def test_file_round_trip(tmp_path):
    items = list(uniform_random(80, 8, seed=9))
    eng = Engine(FirstFit(), metrics=EngineMetrics())
    for it in items[:40]:
        eng.feed(it)
    path = tmp_path / "engine.ckpt"
    ckpt = save_checkpoint(eng, path)
    assert path.exists() and ckpt.arrivals == 40

    resumed = load_checkpoint(path)
    assert resumed.metrics is not None  # metrics travel with the blob
    assert resumed.metrics.arrivals.value == 40
    for it in items[40:]:
        resumed.feed(it)
    assert resumed.finish().cost == simulate(FirstFit(),
        uniform_random(80, 8, seed=9)).cost


def test_checkpoint_metadata():
    items = list(uniform_random(50, 8, seed=10))
    eng = Engine(FirstFit())
    for it in items[:25]:
        eng.feed(it)
    ckpt = snapshot(eng)
    assert ckpt.time == eng.time
    assert ckpt.cost_so_far == pytest.approx(eng.cost_so_far)
    assert ckpt.version == CHECKPOINT_VERSION == 3


def test_reject_wrong_payload(tmp_path):
    import pickle

    path = tmp_path / "bogus.ckpt"
    path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
    with pytest.raises(SimulationError):
        load_checkpoint(path)


def test_reject_future_version():
    ckpt = Checkpoint(
        version=99, arrivals=0, time=0.0, cost_so_far=0.0, blob=b""
    )
    with pytest.raises(SimulationError):
        Checkpoint.loads(ckpt.dumps())


def test_reject_v1_checkpoint_with_clear_message(tmp_path):
    # a pre-kernel (PR-1) checkpoint: same envelope, version 1, whose
    # blob we never get to unpickle — the version gate fires first
    ckpt = Checkpoint(
        version=1, arrivals=10, time=3.0, cost_so_far=5.0,
        blob=b"\x80\x05}\x94.",
    )
    path = tmp_path / "old.ckpt"
    path.write_bytes(ckpt.dumps())
    with pytest.raises(SimulationError, match=r"format v1.*pre-kernel"):
        load_checkpoint(path)


def test_restored_kernel_hooks_rewired():
    # the kernel drops its listener/facade at pickle time; restore must
    # re-attach them so accounting keeps tracking post-resume events
    items = list(uniform_random(40, 8, seed=12))
    eng = Engine(FirstFit())
    for it in items[:20]:
        eng.feed(it)
    resumed = restore(snapshot(eng))
    assert resumed._kernel._listener is resumed
    assert resumed._kernel._facade is resumed
    before = resumed.accounting.arrivals
    for it in items[20:]:
        resumed.feed(it)
    assert resumed.accounting.arrivals == before + 20


def test_observers_not_checkpointed():
    eng = Engine(FirstFit())
    eng.subscribe(lambda e: None)
    for it in list(uniform_random(20, 4, seed=11))[:10]:
        eng.feed(it)
    resumed = restore(snapshot(eng))
    assert resumed._observers == []


class TestCorruptedCheckpoints:
    """Damaged checkpoint files must fail with a diagnosable
    CheckpointError, never a bare UnpicklingError/EOFError."""

    def _checkpoint_bytes(self) -> bytes:
        eng = Engine(FirstFit())
        for it in list(uniform_random(30, 8, seed=13))[:15]:
            eng.feed(it)
        return snapshot(eng).dumps()

    def test_truncated_file(self, tmp_path):
        data = self._checkpoint_bytes()
        path = tmp_path / "cut.ckpt"
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupted"):
            load_checkpoint(path)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"this is not a pickle at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_corrupted_blob_inside_valid_envelope(self):
        eng = Engine(FirstFit())
        for it in list(uniform_random(30, 8, seed=14))[:15]:
            eng.feed(it)
        ckpt = snapshot(eng)
        broken = Checkpoint(
            version=ckpt.version,
            arrivals=ckpt.arrivals,
            time=ckpt.time,
            cost_so_far=ckpt.cost_so_far,
            blob=ckpt.blob[:10],
        )
        with pytest.raises(CheckpointError, match="blob is unreadable"):
            restore(broken)

    def test_blob_with_wrong_payload(self):
        import pickle

        broken = Checkpoint(
            version=CHECKPOINT_VERSION, arrivals=0, time=0.0,
            cost_so_far=0.0, blob=pickle.dumps([1, 2, 3]),
        )
        with pytest.raises(CheckpointError, match="engine state"):
            restore(broken)

    def test_checkpoint_error_is_a_simulation_error(self):
        # callers with existing `except SimulationError` handlers keep
        # catching checkpoint failures after the errors refactor
        assert issubclass(CheckpointError, SimulationError)


class TestResumePreservesObsCounters:
    def test_deterministic_metrics_survive_resume(self):
        items = list(uniform_random(100, 16, seed=15))

        straight = EngineMetrics()
        eng = Engine(HybridAlgorithm(), metrics=straight)
        for it in items:
            eng.feed(it)
        eng.finish()

        interrupted = EngineMetrics()
        eng2 = Engine(HybridAlgorithm(), metrics=interrupted)
        for it in items[:50]:
            eng2.feed(it)
        resumed = restore(snapshot(eng2))
        for it in items[50:]:
            resumed.feed(it)
        resumed.finish()

        a = straight.snapshot()
        b = resumed.metrics.snapshot()
        # wall-clock sections differ run to run; the deterministic
        # counters/histograms must be exactly preserved across the
        # snapshot/restore boundary
        assert a["counters"] == b["counters"]
        assert a["histograms"] == b["histograms"]


class TestV2Compat:
    """v2 checkpoints (boxed-item blobs, no column table) stay loadable.

    The fixture was written by the pre-columnar engine: FirstFit fed the
    first 400 items of ``examples/traces/uniform_1k.jsonl``, snapshotted
    at checkpoint version 2.  ``checkpoint_v2_expected.json`` freezes
    the metadata at the cut and the final cost of the uninterrupted run.
    """

    DATA = pathlib.Path(__file__).parent / "data"
    TRACE = (
        pathlib.Path(__file__).resolve().parents[2]
        / "examples"
        / "traces"
        / "uniform_1k.jsonl"
    )

    @pytest.fixture()
    def expected(self):
        return json.loads(
            (self.DATA / "checkpoint_v2_expected.json").read_text()
        )

    def _resume(self, engine, skip):
        from repro.workloads.io import iter_jsonl

        for i, item in enumerate(iter_jsonl(self.TRACE)):
            if i >= skip:
                engine.feed(item)

    def test_v2_restores_with_identical_metadata(self, expected):
        ckpt = Checkpoint.load(self.DATA / "checkpoint_v2_firstfit.ckpt")
        assert ckpt.version == 2
        assert ckpt.columns is None  # v2 blobs carry boxed items
        assert ckpt.arrivals == expected["arrivals"]
        eng = restore(ckpt)
        assert eng.time == pytest.approx(expected["time"])
        assert eng.cost_so_far == pytest.approx(expected["cost_so_far"])

    def test_v2_resume_reaches_frozen_final_cost(self, expected):
        eng = load_checkpoint(self.DATA / "checkpoint_v2_firstfit.ckpt")
        self._resume(eng, expected["arrivals"])
        summary = eng.finish()
        assert summary.cost == pytest.approx(expected["final_cost"])
        assert summary.bins_opened == expected["bins_opened"]
        assert summary.max_open == expected["max_open"]

    def test_v2_resaves_as_v3_and_round_trips(self, tmp_path, expected):
        eng = load_checkpoint(self.DATA / "checkpoint_v2_firstfit.ckpt")
        upgraded_path = tmp_path / "upgraded.ckpt"
        upgraded = save_checkpoint(eng, upgraded_path)
        assert upgraded.version == CHECKPOINT_VERSION == 3
        assert upgraded.columns is not None  # item rows now columnar

        eng2 = load_checkpoint(upgraded_path)
        self._resume(eng, expected["arrivals"])
        self._resume(eng2, expected["arrivals"])
        s1, s2 = eng.finish(), eng2.finish()
        assert s1.cost == s2.cost == pytest.approx(expected["final_cost"])
        assert s1.bins_opened == s2.bins_opened
