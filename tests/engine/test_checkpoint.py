"""Checkpoint/restore: a resumed run must be indistinguishable from an
uninterrupted one — same final cost, bins, and assignment."""

import pytest

from repro.algorithms import CDFF, FirstFit, HybridAlgorithm, NextFit
from repro.core.errors import CheckpointError, SimulationError
from repro.core.simulation import simulate
from repro.engine import (
    Checkpoint,
    Engine,
    EngineMetrics,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from repro.engine.checkpoint import CHECKPOINT_VERSION
from repro.workloads import binary_input, uniform_random


@pytest.mark.parametrize(
    "factory,instance",
    [
        (FirstFit, uniform_random(150, 32, seed=5)),
        (HybridAlgorithm, uniform_random(150, 32, seed=6)),
        (NextFit, uniform_random(100, 16, seed=7)),
        (CDFF, binary_input(128)),
    ],
    ids=["FirstFit", "HybridAlgorithm", "NextFit", "CDFF"],
)
@pytest.mark.parametrize("cut", [0.25, 0.5, 0.9])
def test_restore_reaches_identical_final_cost(factory, instance, cut):
    batch = simulate(factory(), instance)
    items = list(instance)
    k = max(1, int(len(items) * cut))

    eng = Engine(factory(), record=True)
    for it in items[:k]:
        eng.feed(it)
    ckpt = snapshot(eng)
    assert ckpt.arrivals == k

    resumed = restore(ckpt)
    for it in items[k:]:
        resumed.feed(it)
    summary = resumed.finish()
    assert summary.cost == batch.cost
    assert summary.max_open == batch.max_open
    assert resumed.result().assignment == batch.assignment
    assert resumed.result().bins == batch.bins


def test_snapshot_is_independent_of_live_engine():
    items = list(uniform_random(120, 16, seed=8))
    eng = Engine(HybridAlgorithm())
    for it in items[:60]:
        eng.feed(it)
    ckpt = snapshot(eng)
    # keep driving the original — must not corrupt the snapshot
    for it in items[60:]:
        eng.feed(it)
    s_live = eng.finish()

    resumed = restore(ckpt)
    for it in items[60:]:
        resumed.feed(it)
    s_resumed = resumed.finish()
    assert s_resumed.cost == s_live.cost
    assert s_resumed.bins_opened == s_live.bins_opened


def test_file_round_trip(tmp_path):
    items = list(uniform_random(80, 8, seed=9))
    eng = Engine(FirstFit(), metrics=EngineMetrics())
    for it in items[:40]:
        eng.feed(it)
    path = tmp_path / "engine.ckpt"
    ckpt = save_checkpoint(eng, path)
    assert path.exists() and ckpt.arrivals == 40

    resumed = load_checkpoint(path)
    assert resumed.metrics is not None  # metrics travel with the blob
    assert resumed.metrics.arrivals.value == 40
    for it in items[40:]:
        resumed.feed(it)
    assert resumed.finish().cost == simulate(FirstFit(),
        uniform_random(80, 8, seed=9)).cost


def test_checkpoint_metadata():
    items = list(uniform_random(50, 8, seed=10))
    eng = Engine(FirstFit())
    for it in items[:25]:
        eng.feed(it)
    ckpt = snapshot(eng)
    assert ckpt.time == eng.time
    assert ckpt.cost_so_far == pytest.approx(eng.cost_so_far)
    assert ckpt.version == CHECKPOINT_VERSION == 2


def test_reject_wrong_payload(tmp_path):
    import pickle

    path = tmp_path / "bogus.ckpt"
    path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
    with pytest.raises(SimulationError):
        load_checkpoint(path)


def test_reject_future_version():
    ckpt = Checkpoint(
        version=99, arrivals=0, time=0.0, cost_so_far=0.0, blob=b""
    )
    with pytest.raises(SimulationError):
        Checkpoint.loads(ckpt.dumps())


def test_reject_v1_checkpoint_with_clear_message(tmp_path):
    # a pre-kernel (PR-1) checkpoint: same envelope, version 1, whose
    # blob we never get to unpickle — the version gate fires first
    ckpt = Checkpoint(
        version=1, arrivals=10, time=3.0, cost_so_far=5.0,
        blob=b"\x80\x05}\x94.",
    )
    path = tmp_path / "old.ckpt"
    path.write_bytes(ckpt.dumps())
    with pytest.raises(SimulationError, match=r"format v1.*pre-kernel"):
        load_checkpoint(path)


def test_restored_kernel_hooks_rewired():
    # the kernel drops its listener/facade at pickle time; restore must
    # re-attach them so accounting keeps tracking post-resume events
    items = list(uniform_random(40, 8, seed=12))
    eng = Engine(FirstFit())
    for it in items[:20]:
        eng.feed(it)
    resumed = restore(snapshot(eng))
    assert resumed._kernel._listener is resumed
    assert resumed._kernel._facade is resumed
    before = resumed.accounting.arrivals
    for it in items[20:]:
        resumed.feed(it)
    assert resumed.accounting.arrivals == before + 20


def test_observers_not_checkpointed():
    eng = Engine(FirstFit())
    eng.subscribe(lambda e: None)
    for it in list(uniform_random(20, 4, seed=11))[:10]:
        eng.feed(it)
    resumed = restore(snapshot(eng))
    assert resumed._observers == []


class TestCorruptedCheckpoints:
    """Damaged checkpoint files must fail with a diagnosable
    CheckpointError, never a bare UnpicklingError/EOFError."""

    def _checkpoint_bytes(self) -> bytes:
        eng = Engine(FirstFit())
        for it in list(uniform_random(30, 8, seed=13))[:15]:
            eng.feed(it)
        return snapshot(eng).dumps()

    def test_truncated_file(self, tmp_path):
        data = self._checkpoint_bytes()
        path = tmp_path / "cut.ckpt"
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupted"):
            load_checkpoint(path)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"this is not a pickle at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_corrupted_blob_inside_valid_envelope(self):
        eng = Engine(FirstFit())
        for it in list(uniform_random(30, 8, seed=14))[:15]:
            eng.feed(it)
        ckpt = snapshot(eng)
        broken = Checkpoint(
            version=ckpt.version,
            arrivals=ckpt.arrivals,
            time=ckpt.time,
            cost_so_far=ckpt.cost_so_far,
            blob=ckpt.blob[:10],
        )
        with pytest.raises(CheckpointError, match="blob is unreadable"):
            restore(broken)

    def test_blob_with_wrong_payload(self):
        import pickle

        broken = Checkpoint(
            version=CHECKPOINT_VERSION, arrivals=0, time=0.0,
            cost_so_far=0.0, blob=pickle.dumps([1, 2, 3]),
        )
        with pytest.raises(CheckpointError, match="engine state"):
            restore(broken)

    def test_checkpoint_error_is_a_simulation_error(self):
        # callers with existing `except SimulationError` handlers keep
        # catching checkpoint failures after the errors refactor
        assert issubclass(CheckpointError, SimulationError)


class TestResumePreservesObsCounters:
    def test_deterministic_metrics_survive_resume(self):
        items = list(uniform_random(100, 16, seed=15))

        straight = EngineMetrics()
        eng = Engine(HybridAlgorithm(), metrics=straight)
        for it in items:
            eng.feed(it)
        eng.finish()

        interrupted = EngineMetrics()
        eng2 = Engine(HybridAlgorithm(), metrics=interrupted)
        for it in items[:50]:
            eng2.feed(it)
        resumed = restore(snapshot(eng2))
        for it in items[50:]:
            resumed.feed(it)
        resumed.finish()

        a = straight.snapshot()
        b = resumed.metrics.snapshot()
        # wall-clock sections differ run to run; the deterministic
        # counters/histograms must be exactly preserved across the
        # snapshot/restore boundary
        assert a["counters"] == b["counters"]
        assert a["histograms"] == b["histograms"]
