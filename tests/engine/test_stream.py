"""Trace sources: lazy file streaming, ordering, merging, format sniffing."""

import itertools

import pytest

from repro.core.errors import InvalidInstanceError, SimulationError
from repro.core.item import Item
from repro.engine import (
    iter_csv,
    iter_instance,
    iter_jsonl,
    iter_tuples,
    merge,
    open_trace,
    ordered,
    trace_format,
)
from repro.workloads import dump_jsonl, load_jsonl, save_csv, uniform_random


@pytest.fixture
def inst():
    return uniform_random(60, 8, seed=12)


class TestFileSources:
    def test_iter_jsonl_matches_load(self, inst, tmp_path):
        path = tmp_path / "t.jsonl"
        dump_jsonl(inst, path)
        streamed = list(iter_jsonl(path))
        assert streamed == list(load_jsonl(path))
        assert [it.uid for it in streamed] == list(range(len(inst)))

    def test_iter_jsonl_is_lazy(self, inst, tmp_path):
        path = tmp_path / "t.jsonl"
        dump_jsonl(inst, path)
        it = iter_jsonl(path)
        first = next(it)
        assert first.arrival == inst[0].arrival

    def test_iter_csv_matches_instance(self, inst, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(inst, path)
        assert list(iter_csv(path)) == list(inst)

    def test_iter_csv_bad_header(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1,2,0.5\n")
        with pytest.raises(InvalidInstanceError):
            list(iter_csv(path))

    def test_open_trace_auto(self, inst, tmp_path):
        j = tmp_path / "t.jsonl"
        c = tmp_path / "t.csv"
        dump_jsonl(inst, j)
        save_csv(inst, c)
        assert list(open_trace(j)) == list(open_trace(c))

    def test_open_trace_unknown_extension(self, tmp_path):
        with pytest.raises(InvalidInstanceError):
            open_trace(tmp_path / "t.parquet")
        assert trace_format("x.jsonl") == "jsonl"
        assert trace_format("x.csv") == "csv"


class TestAdapters:
    def test_iter_instance(self, inst):
        assert list(iter_instance(inst)) == list(inst)

    def test_iter_tuples_lazy_no_sort(self):
        items = list(iter_tuples([(0.0, 1.0, 0.5), (2.0, 3.0, 0.4)]))
        assert [it.uid for it in items] == [0, 1]
        assert items[1].arrival == 2.0

    def test_ordered_passes_sorted(self, inst):
        assert list(ordered(iter(inst))) == list(inst)

    def test_ordered_rejects_regression(self):
        bad = [Item(2.0, 3.0, 0.5, uid=0), Item(1.0, 2.0, 0.5, uid=1)]
        with pytest.raises(SimulationError):
            list(ordered(iter(bad)))

    def test_merge_interleaves_and_reassigns_uids(self):
        a = [Item(0.0, 1.0, 0.1, uid=0), Item(4.0, 5.0, 0.2, uid=1)]
        b = [Item(1.0, 2.0, 0.3, uid=0), Item(4.0, 6.0, 0.4, uid=1)]
        merged = list(merge(iter(a), iter(b)))
        assert [it.arrival for it in merged] == [0.0, 1.0, 4.0, 4.0]
        assert [it.uid for it in merged] == [0, 1, 2, 3]
        # tie at t=4 keeps source priority: a's item first
        assert merged[2].size == 0.2 and merged[3].size == 0.4

    def test_merged_shards_equal_whole_trace(self, inst):
        from repro.algorithms import FirstFit
        from repro.core.simulation import simulate
        from repro.engine import Engine

        items = list(inst)
        shard_a = [it for k, it in enumerate(items) if k % 2 == 0]
        shard_b = [it for k, it in enumerate(items) if k % 2 == 1]
        summary = Engine(FirstFit()).run(merge(iter(shard_a), iter(shard_b)))
        # arrival ties may be ordered differently than the original
        # instance, so compare against a simulate() over the merged order
        from repro.core.instance import Instance

        merged_inst = Instance(list(merge(iter(shard_a), iter(shard_b))),
                               reassign_uids=False)
        assert summary.cost == simulate(FirstFit(), merged_inst).cost
