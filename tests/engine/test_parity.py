"""Engine/batch parity: the streaming engine must reproduce ``simulate()``
bit-for-bit — cost, max_open, and assignment — for every registered
algorithm on every workload-generator family, including on random
(hypothesis-generated) instances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.simulation import simulate
from repro.engine import Engine, check_parity, default_parity_cells, parity_suite
from repro.engine.parity import ALIGNED_ALGORITHMS, GENERAL_ALGORITHMS
from repro.parallel import _registry

sizes = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)
lengths = st.floats(min_value=1.0, max_value=40.0, allow_nan=False)


@st.composite
def instances(draw, n_max=25):
    n = draw(st.integers(min_value=1, max_value=n_max))
    triples = []
    for _ in range(n):
        a = draw(times)
        triples.append((a, a + draw(lengths), draw(sizes)))
    return Instance.from_tuples(triples)


class TestParitySweep:
    """The default registry × generator sweep, cell by cell."""

    @pytest.mark.parametrize(
        "algorithm,workload,instance",
        [
            pytest.param(a, w, i, id=f"{a}-{w}")
            for a, w, i in default_parity_cells(seed=0)
        ],
    )
    def test_cell(self, algorithm, workload, instance):
        report = check_parity(
            _registry()[algorithm], instance, workload=workload
        )
        assert report.ok, str(report)
        # the contract is stated with 1e-9 slack; observed equality is exact
        assert report.engine_cost == report.batch_cost

    def test_suite_runner(self):
        reports = parity_suite(
            [("FirstFit", "binary-ish", default_parity_cells(seed=1)[0][2])]
        )
        assert len(reports) == 1 and reports[0].ok

    def test_registry_fully_covered(self):
        from repro.parallel import ALGORITHM_REGISTRY

        covered = set(GENERAL_ALGORITHMS) | set(ALIGNED_ALGORITHMS)
        assert covered == set(ALGORITHM_REGISTRY)


class TestParityProperty:
    """Random instances: streaming == batch for the general algorithms."""

    @settings(max_examples=40, deadline=None)
    @given(inst=instances(), name=st.sampled_from(GENERAL_ALGORITHMS))
    def test_random_instances(self, inst, name):
        factory = _registry()[name]
        batch = simulate(factory(), inst)
        eng = Engine(factory(), record=True)
        summary = eng.run(iter(inst))
        assert summary.cost == batch.cost
        assert summary.max_open == batch.max_open
        assert eng.result().assignment == batch.assignment

    @settings(max_examples=15, deadline=None)
    @given(inst=instances(), cap=st.floats(min_value=1.0, max_value=4.0))
    def test_nonunit_capacity(self, inst, cap):
        from repro.algorithms import FirstFit

        batch = simulate(FirstFit(), inst, capacity=cap)
        summary = Engine(FirstFit(), capacity=cap).run(iter(inst))
        assert summary.cost == batch.cost
        assert summary.max_open == batch.max_open

    @settings(max_examples=15, deadline=None)
    @given(inst=instances())
    def test_nonclairvoyant_masking(self, inst):
        """Masked views reach the algorithm identically in both paths."""
        from repro.algorithms import FirstFit

        batch = simulate(FirstFit(clairvoyant=False), inst)
        summary = Engine(FirstFit(clairvoyant=False)).run(iter(inst))
        assert summary.cost == batch.cost

    @settings(max_examples=20, deadline=None)
    @given(inst=instances(), name=st.sampled_from(GENERAL_ALGORITHMS))
    def test_mid_stream_cost_is_consistent(self, inst, name):
        """cost_so_far after the k-th release matches the batch
        incremental simulation at the same point."""
        from repro.core.simulation import IncrementalSimulation

        factory = _registry()[name]
        k = max(1, len(inst) // 2)
        sim = IncrementalSimulation(factory())
        eng = Engine(factory())
        for it in list(inst)[:k]:
            sim.release(it)
            eng.feed(it)
        assert eng.cost_so_far == pytest.approx(sim.cost_so_far, abs=1e-9)
        assert eng.open_bin_count == sim.open_bin_count
