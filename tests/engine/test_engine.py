"""Unit tests for the streaming engine core (loop + accounting)."""

import math

import pytest

from repro.algorithms import FirstFit, HybridAlgorithm, NextFit
from repro.core.errors import (
    ClairvoyanceError,
    PackingError,
    SimulationError,
)
from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.simulation import simulate
from repro.engine import (
    ArrivalEvent,
    DepartureEvent,
    Engine,
    RunningAccounting,
    replay,
)
from repro.workloads import uniform_random


def small_instance() -> Instance:
    return Instance.from_tuples(
        [(0.0, 4.0, 0.5), (0.0, 1.0, 0.5), (2.0, 6.0, 0.3), (2.0, 3.0, 0.9)]
    )


class TestEngineBasics:
    def test_run_matches_simulate_cost(self):
        inst = small_instance()
        batch = simulate(FirstFit(), inst)
        summary = Engine(FirstFit()).run(iter(inst))
        assert summary.cost == batch.cost
        assert summary.max_open == batch.max_open
        assert summary.bins_opened == batch.n_bins

    def test_replay_convenience(self):
        inst = uniform_random(50, 8, seed=1)
        assert replay(FirstFit(), iter(inst)).cost == simulate(
            FirstFit(), inst
        ).cost

    def test_out_of_order_rejected(self):
        eng = Engine(FirstFit())
        eng.feed(Item(5.0, 6.0, 0.5, uid=0))
        with pytest.raises(SimulationError):
            eng.feed(Item(1.0, 2.0, 0.5, uid=1))

    def test_clairvoyant_algorithm_rejects_unknown_departure(self):
        eng = Engine(FirstFit())
        with pytest.raises(ClairvoyanceError):
            eng.feed(Item(0.0, None, 0.5, uid=0))

    def test_capacity_validated(self):
        with pytest.raises(SimulationError):
            Engine(FirstFit(), capacity=0.0)

    def test_cost_so_far_mid_stream(self):
        eng = Engine(FirstFit())
        eng.feed(Item(0.0, 4.0, 0.5, uid=0))
        eng.feed(Item(0.0, 2.0, 0.9, uid=1))  # needs a second bin
        eng.advance_to(3.0)
        # bin0 open [0, 3), bin1 closed [0, 2)
        assert eng.cost_so_far == pytest.approx(3.0 + 2.0)
        assert eng.open_bin_count == 1
        eng.finish()
        assert eng.accounting.cost == pytest.approx(4.0 + 2.0)

    def test_constant_memory_keeps_no_history(self):
        inst = uniform_random(200, 16, seed=2)
        eng = Engine(FirstFit())
        eng.run(iter(inst))
        assert eng._items == []
        assert eng._records == []
        assert eng._assignment == {}
        with pytest.raises(SimulationError):
            eng.result()

    def test_record_mode_result_equals_simulate(self):
        inst = uniform_random(120, 16, seed=3)
        batch = simulate(HybridAlgorithm(), inst)
        eng = Engine(HybridAlgorithm(), record=True)
        eng.run(iter(inst))
        streamed = eng.result()
        assert streamed.cost == batch.cost
        assert streamed.assignment == batch.assignment
        assert streamed.bins == batch.bins
        assert streamed.departed_at == batch.departed_at

    def test_finish_with_adaptive_items_raises(self):
        class Lenient(FirstFit):
            def __init__(self):
                super().__init__(clairvoyant=False)

        eng = Engine(Lenient())
        eng.feed(Item(0.0, None, 0.4, uid=0))
        with pytest.raises(SimulationError):
            eng.finish()

    def test_adaptive_depart(self):
        class Lenient(FirstFit):
            def __init__(self):
                super().__init__(clairvoyant=False)

        eng = Engine(Lenient())
        eng.feed(Item(0.0, None, 0.4, uid=0))
        eng.depart(0, 5.0)
        summary = eng.finish()
        assert summary.cost == pytest.approx(5.0)
        # departing a scheduled item explicitly is an error
        eng2 = Engine(Lenient())
        eng2.feed(Item(0.0, 2.0, 0.4, uid=0))
        with pytest.raises(SimulationError):
            eng2.depart(0, 1.0)

    def test_place_must_return_open_bin(self):
        class Rogue(FirstFit):
            def place(self, item, sim):
                from repro.core.bins import Bin

                return Bin(999, 1.0, 0.0)

        with pytest.raises(PackingError):
            Engine(Rogue()).feed(Item(0.0, 1.0, 0.5, uid=0))

    def test_summary_counters(self):
        inst = small_instance()
        summary = Engine(FirstFit()).run(iter(inst))
        assert summary.items == len(inst)
        assert summary.bins_opened == summary.bins_closed
        assert summary.final_time == 6.0
        d = summary.to_dict()
        assert d["items"] == 4 and d["algorithm"] == "FirstFit"


class TestObservers:
    def test_events_narrated_in_order(self):
        events = []
        eng = Engine(FirstFit())
        eng.subscribe(events.append)
        eng.run(iter(small_instance()))
        kinds = [type(e).__name__ for e in events]
        assert kinds.count("ArrivalEvent") == 4
        assert kinds.count("DepartureEvent") == 4
        times = [e.time for e in events]
        assert times == sorted(times)
        closed = [e for e in events if isinstance(e, DepartureEvent) and e.closed]
        assert len(closed) == eng.accounting.bins_closed

    def test_arrival_event_payload(self):
        events = []
        eng = Engine(FirstFit())
        eng.subscribe(events.append)
        bin_ = eng.feed(Item(0.0, 1.0, 0.5, uid=0))
        (ev,) = events
        assert isinstance(ev, ArrivalEvent)
        assert ev.bin_uid == bin_.uid and ev.opened


class TestRunningAccounting:
    def test_cost_identity(self):
        acc = RunningAccounting()
        acc.advance(0.0)
        acc.on_open(0.0)
        acc.on_open(1.0)
        assert acc.cost_at(4.0) == pytest.approx(4.0 + 3.0)
        acc.on_close(0.0, 5.0)
        acc.on_close(1.0, 5.0)
        assert acc.cost == pytest.approx(5.0 + 4.0)
        assert acc.max_open == 2 and acc.open_count == 0

    def test_util_area_integration(self):
        acc = RunningAccounting()
        acc.advance(0.0)
        acc.on_arrival(0.5)
        acc.advance(2.0)  # 0.5 * 2
        acc.on_arrival(0.3)
        acc.advance(3.0)  # 0.8 * 1
        assert acc.util_area == pytest.approx(0.5 * 2 + 0.8)
        assert acc.peak_load == pytest.approx(0.8)

    def test_profile_requires_flag(self):
        acc = RunningAccounting()
        with pytest.raises(ValueError):
            acc.open_profile()

    def test_open_profile_matches_batch(self):
        inst = uniform_random(80, 8, seed=4)
        batch = simulate(FirstFit(), inst)
        eng = Engine(FirstFit(), record_profile=True)
        eng.run(iter(inst))
        prof = eng.accounting.open_profile()
        expected = batch.open_bins_profile()
        assert prof.integral() == pytest.approx(expected.integral())
        assert int(prof.max()) == batch.max_open

    def test_to_dict_snapshot(self):
        acc = RunningAccounting()
        snap = acc.to_dict()
        assert snap["time"] is None and snap["cost_so_far"] == 0.0

    def test_engine_load_tracks_active_sizes(self):
        eng = Engine(FirstFit())
        eng.feed(Item(0.0, 4.0, 0.5, uid=0))
        eng.feed(Item(1.0, 2.0, 0.25, uid=1))
        assert eng.accounting.load == pytest.approx(0.75)
        eng.advance_to(3.0)
        assert eng.accounting.load == pytest.approx(0.5)
        eng.finish()
        assert eng.accounting.load == 0.0
