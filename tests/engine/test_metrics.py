"""Metrics layer: counters, histograms, timings, sinks."""

import io
import json

import pytest

from repro.algorithms import FirstFit
from repro.engine import (
    CallbackSink,
    ConsoleSink,
    Counter,
    Engine,
    EngineMetrics,
    Histogram,
    JSONLSink,
    JSONSink,
    Timing,
)
from repro.workloads import uniform_random


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_histogram_buckets(self):
        h = Histogram((1, 2, 5))
        for x in (0.5, 1.0, 1.5, 3.0, 10.0):
            h.observe(x)
        snap = h.to_dict()
        assert snap["total"] == 5
        assert snap["buckets"]["<= 1"] == 2  # 0.5 and 1.0 (right-closed)
        assert snap["buckets"]["(1, 2]"] == 1
        assert snap["buckets"]["(2, 5]"] == 1
        assert snap["buckets"]["> 5"] == 1
        assert h.mean == pytest.approx((0.5 + 1 + 1.5 + 3 + 10) / 5)

    def test_histogram_needs_edges(self):
        with pytest.raises(ValueError):
            Histogram(())

    def test_timing(self):
        t = Timing()
        t.observe(0.5)
        t.observe(1.5)
        snap = t.to_dict()
        assert snap["count"] == 2
        assert snap["total_s"] == pytest.approx(2.0)
        assert snap["min_us"] == pytest.approx(5e5)
        assert snap["max_us"] == pytest.approx(1.5e6)


class TestEngineMetrics:
    def run_engine(self):
        metrics = EngineMetrics()
        inst = uniform_random(100, 16, seed=13)
        Engine(FirstFit(), metrics=metrics).run(iter(inst))
        return metrics, inst

    def test_counters_match_run(self):
        metrics, inst = self.run_engine()
        assert metrics.arrivals.value == len(inst)
        assert metrics.departures.value == len(inst)
        assert metrics.events.value == 2 * len(inst)
        assert metrics.bins_opened.value == metrics.bins_closed.value
        assert metrics.bins_opened.value > 0

    def test_histograms_cover_all_bins(self):
        metrics, _ = self.run_engine()
        assert metrics.bin_occupancy.total == metrics.bins_closed.value
        assert metrics.bin_utilization.total == metrics.bins_closed.value
        assert metrics.bin_lifetime.total == metrics.bins_closed.value
        # utilisation is a fraction of capacity: nothing above 1.0
        assert metrics.bin_utilization.to_dict()["buckets"]["> 1"] == 0

    def test_latency_timings_populated(self):
        metrics, inst = self.run_engine()
        assert metrics.arrival_latency.count == len(inst)
        assert metrics.departure_latency.count == len(inst)
        assert metrics.arrival_latency.total > 0

    def test_snapshot_shape(self):
        metrics, _ = self.run_engine()
        snap = metrics.snapshot(extra={"run": "test"})
        assert set(snap) == {"counters", "histograms", "timings", "run"}
        json.dumps(snap)  # JSON-serialisable end to end


class TestSinks:
    def test_json_sink(self, tmp_path):
        path = tmp_path / "m.json"
        EngineMetrics().flush(JSONSink(path))
        assert json.loads(path.read_text())["counters"]["events"] == 0

    def test_jsonl_sink_appends(self, tmp_path):
        path = tmp_path / "m.jsonl"
        m = EngineMetrics()
        m.flush(JSONLSink(path))
        m.events.inc()
        m.flush(JSONLSink(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["counters"]["events"] == 1

    def test_console_sink(self):
        buf = io.StringIO()
        EngineMetrics().flush(ConsoleSink(buf))
        assert "counters" in buf.getvalue()

    def test_callback_sink_and_multi_flush(self):
        seen = []
        m = EngineMetrics()
        m.flush([CallbackSink(seen.append), CallbackSink(seen.append)])
        assert len(seen) == 2 and seen[0] == seen[1]

    def test_flush_accepts_single_sink(self):
        seen = []
        EngineMetrics().flush(CallbackSink(seen.append))
        assert len(seen) == 1
