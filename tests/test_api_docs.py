"""The generated API reference must exist, be current, and be complete."""

import importlib
import pathlib
import sys

API_MD = pathlib.Path(__file__).parent.parent / "docs" / "api.md"
SCRIPTS = pathlib.Path(__file__).parent.parent / "scripts"


def load_generator():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import gen_api_docs

        importlib.reload(gen_api_docs)
        return gen_api_docs
    finally:
        sys.path.remove(str(SCRIPTS))


class TestApiDocs:
    def test_file_is_current(self):
        gen = load_generator()
        assert API_MD.exists(), "run scripts/gen_api_docs.py"
        assert API_MD.read_text() == gen.generate(), (
            "docs/api.md is stale — run scripts/gen_api_docs.py"
        )

    def test_no_undocumented_symbols(self):
        gen = load_generator()
        text = gen.generate()
        undocumented = [
            line for line in text.splitlines() if "(undocumented)" in line
        ]
        assert not undocumented, undocumented

    def test_key_symbols_listed(self):
        text = API_MD.read_text()
        for symbol in (
            "HybridAlgorithm",
            "CDFF",
            "SqrtLogAdversary",
            "opt_repacking",
            "binary_input",
            "align_departures",
            "simulate",
            "audit",
        ):
            assert f"`{symbol}`" in text
