"""Tests for the `repro-dbp pack` CLI command."""

import pytest

from repro.cli import main
from repro.workloads import save_csv, uniform_random


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.csv"
    save_csv(uniform_random(25, 8, seed=0), path)
    return str(path)


class TestPack:
    def test_basic(self, trace_path, capsys):
        assert main(["pack", trace_path, "-a", "FirstFit"]) == 0
        out = capsys.readouterr().out
        assert "FirstFit: cost=" in out
        assert "OPT_R ∈" in out

    def test_default_algorithm(self, trace_path, capsys):
        assert main(["pack", trace_path]) == 0
        assert "HybridAlgorithm" in capsys.readouterr().out

    def test_render(self, trace_path, capsys):
        assert main(["pack", trace_path, "--render"]) == 0
        assert "bin " in capsys.readouterr().out

    def test_capacity_skips_opt(self, trace_path, capsys):
        assert main(["pack", trace_path, "--capacity", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "OPT_R ∈" not in out  # unit-capacity bounds don't apply

    def test_list_algorithms(self, capsys):
        assert main(["pack", "--list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "CDFF" in out and "FirstFit" in out

    def test_unknown_algorithm(self, trace_path, capsys):
        assert main(["pack", trace_path, "-a", "Nope"]) == 1

    def test_missing_csv(self, capsys):
        assert main(["pack"]) == 1
