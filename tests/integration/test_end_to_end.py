"""Integration tests: full pipelines across modules."""

import math

import pytest

from repro import (
    CDFF,
    FirstFit,
    HybridAlgorithm,
    NonClairvoyantAdversary,
    SqrtLogAdversary,
    aligned_random,
    audit,
    binary_input,
    cloud_gaming,
    dual_coloring,
    measure_ratio,
    opt_reference,
    partition_aligned,
    simulate,
    uniform_random,
    waterfill,
)
from repro.analysis.theory import (
    cdff_aligned_upper_bound,
    ha_upper_bound,
    lower_bound_sqrt_log,
)


class TestAdversaryPipeline:
    """Adversary → generated instance → OPT oracles → certified ratio."""

    def test_sqrt_log_full_chain(self):
        mu = 64
        adv = SqrtLogAdversary(mu)
        out = adv.run(FirstFit())
        audit(out.result)
        opt = opt_reference(out.instance, max_exact=14)
        dc = dual_coloring(out.instance)
        dc.audit()
        # chain of inequalities the proof uses
        assert out.online_cost >= mu * adv.target_bins - 1e-9
        assert dc.cost >= opt.lower - 1e-6
        ratio_vs_optr = out.online_cost / opt.upper
        ratio_vs_dc = out.online_cost / dc.cost
        assert ratio_vs_optr >= lower_bound_sqrt_log(mu)
        assert ratio_vs_dc >= lower_bound_sqrt_log(mu) / 4  # DC ≤ 4 OPT_R

    def test_nonclairvoyant_full_chain(self):
        adv = NonClairvoyantAdversary(8, 8.0)
        out = adv.run(FirstFit(clairvoyant=False))
        audit(out.result)
        opt = opt_reference(out.instance)
        assert out.online_cost / opt.upper > 4.0


class TestPartitionedCDFF:
    """Section 5's partition: running CDFF on the whole aligned input equals
    running it per segment (the algorithm re-derives the partition online)."""

    def test_cost_equals_sum_of_segments(self):
        inst = aligned_random(32, 120, seed=9, horizon=128)
        whole = simulate(CDFF(), inst)
        audit(whole)
        segs = partition_aligned(inst)
        seg_cost = 0.0
        for seg in segs:
            res = simulate(CDFF(), seg)
            audit(res)
            seg_cost += res.cost
        assert math.isclose(whole.cost, seg_cost, rel_tol=1e-9)

    def test_cdff_ratio_within_bound_on_partitioned_input(self):
        inst = aligned_random(64, 200, seed=2, horizon=256)
        est = measure_ratio(CDFF, inst, max_exact=16)
        assert est.upper <= cdff_aligned_upper_bound(2 * 64)


class TestCloudScenario:
    """The intro's cloud story end-to-end: synthetic trace → algorithms →
    OPT sandwich → HA within its bound."""

    def test_cloud_pipeline(self):
        inst = cloud_gaming(60.0, seed=3).normalized()
        results = {}
        for factory in (FirstFit, HybridAlgorithm):
            res = simulate(factory(), inst)
            audit(res)
            results[res.algorithm] = res.cost
        opt = opt_reference(inst, max_exact=16)
        for name, cost in results.items():
            assert cost >= opt.lower - 1e-6
        assert results["HybridAlgorithm"] / opt.lower <= ha_upper_bound(inst.mu)


class TestCrossValidation:
    """Independent implementations must agree with each other."""

    def test_binary_input_three_ways(self):
        """CDFF cost on σ_μ: simulation == combinatorial formula == per-time
        profile sum."""
        from repro.analysis.binary_strings import sum_max_zero_run

        mu = 128
        res = simulate(CDFF(), binary_input(mu))
        formula = mu + sum_max_zero_run(mu)
        prof = res.open_bins_profile()
        profile_sum = sum(int(prof(float(t))) for t in range(mu))
        assert res.cost == formula == profile_sum

    def test_waterfill_vs_oracle(self):
        inst = uniform_random(100, 16, seed=8)
        wf = waterfill(inst)
        opt = opt_reference(inst, max_exact=18)
        assert opt.lower - 1e-6 <= wf.cost <= 2 * opt.upper + 1e-6

    @pytest.mark.parametrize("mu", [4, 16, 64])
    def test_all_online_algorithms_beat_nothing(self, mu):
        """Sanity ordering: every online cost ≥ exact OPT_R lower bound and
        HA ≤ one-bin-per-item."""
        inst = uniform_random(150, mu, seed=mu)
        opt = opt_reference(inst, max_exact=16)
        for factory in (FirstFit, HybridAlgorithm):
            res = simulate(factory(), inst)
            assert res.cost >= opt.lower - 1e-6
            assert res.cost <= sum(it.length for it in inst) + 1e-9
