"""Property-based tests on the core data structures (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.profile import load_profile

sizes = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
lengths = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)


@st.composite
def items(draw, n_max=25):
    n = draw(st.integers(min_value=1, max_value=n_max))
    triples = []
    for _ in range(n):
        a = draw(times)
        l = draw(lengths)
        s = draw(sizes)
        triples.append((a, a + l, s))
    return Instance.from_tuples(triples)


class TestInstanceProperties:
    @given(items())
    @settings(max_examples=60, deadline=None)
    def test_span_at_most_extent(self, inst):
        first = min(it.arrival for it in inst)
        last = max(it.departure for it in inst)
        assert inst.span <= last - first + 1e-9

    @given(items())
    @settings(max_examples=60, deadline=None)
    def test_span_at_least_longest_item(self, inst):
        assert inst.span >= max(it.length for it in inst) - 1e-9

    @given(items())
    @settings(max_examples=60, deadline=None)
    def test_demand_is_profile_integral(self, inst):
        assert math.isclose(
            load_profile(inst).integral(), inst.demand, rel_tol=1e-9, abs_tol=1e-9
        )

    @given(items())
    @settings(max_examples=60, deadline=None)
    def test_max_load_at_most_total_size(self, inst):
        assert inst.stats.max_load <= inst.stats.total_size + 1e-9

    @given(items(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_scaling_homogeneity(self, inst, factor):
        scaled = inst.scaled(factor)
        assert math.isclose(scaled.span, factor * inst.span, rel_tol=1e-9)
        assert math.isclose(scaled.demand, factor * inst.demand, rel_tol=1e-9)
        assert math.isclose(scaled.mu, inst.mu, rel_tol=1e-9)

    @given(items(), st.floats(min_value=-50, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_shift_invariance(self, inst, delta):
        shifted = inst.shifted(delta)
        assert math.isclose(shifted.span, inst.span, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(shifted.demand, inst.demand, rel_tol=1e-9, abs_tol=1e-9)


class TestProfileProperties:
    @given(items())
    @settings(max_examples=60, deadline=None)
    def test_profile_nonnegative(self, inst):
        prof = load_profile(inst)
        assert all(v >= -1e-12 for v in prof.values)

    @given(items())
    @settings(max_examples=60, deadline=None)
    def test_ceil_bounds(self, inst):
        """span ≤ ∫⌈S⌉ and demand ≤ ∫⌈S⌉ ≤ demand + span."""
        prof = load_profile(inst)
        ceil = prof.ceil_integral()
        assert ceil >= prof.support_measure() - 1e-9
        assert ceil >= prof.integral() - 1e-9
        assert ceil <= prof.integral() + prof.support_measure() + 1e-6

    @given(items(), times)
    @settings(max_examples=60, deadline=None)
    def test_profile_matches_pointwise(self, inst, t):
        prof = load_profile(inst)
        assert math.isclose(prof(t), inst.load_at(t), abs_tol=1e-9)


class TestItemProperties:
    @given(times, lengths, sizes)
    @settings(max_examples=60, deadline=None)
    def test_masking_roundtrip(self, a, l, s):
        it = Item(a, a + l, s, uid=1)
        masked = it.masked()
        assert masked.departure is None
        restored = masked.with_departure(a + l)
        assert restored == it
