"""Stateful property test: ItemStore vs. a boxed-row reference model.

A Hypothesis :class:`RuleBasedStateMachine` drives a root
:class:`ItemStore` through arbitrary interleavings of ``append``,
``extend_columns``, ``pop``, ``clear``, ``sort_by_arrival``, and
zero-copy slicing, mirroring every step in a plain Python list of
``(arrival, departure, size, uid)`` tuples.  Invariants compare the
two after every step.

The interesting part is **aliasing**: a slice shares the root's column
arrays, so the machine keeps every live view alongside a snapshot of
the rows it covered at slice time and asserts the view still shows
exactly those rows after the root grows or sorts.  (Appends land past
the view's fixed window; a reordering sort *replaces* the root's array
objects, so views keep the old ones.)  Views must also refuse every
root-only mutation with :class:`InvalidInstanceError`.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

import pytest

from repro.core.errors import InvalidInstanceError, InvalidItemError
from repro.core.store import ItemStore

# bounded, NaN-free coordinates: |arrival| <= 1e6 and length >= 1e-3
# guarantee arrival + length > arrival in float arithmetic
arrivals = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
lengths = st.one_of(
    st.none(), st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
)
sizes = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)
rows = st.tuples(arrivals, lengths, sizes)


class ItemStoreMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.store = ItemStore()
        self.model: list = []  # [(arrival, departure|None, size, uid)]
        self.views: list = []  # [(view_store, slice-time row snapshot)]
        self.next_uid = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _mint(self, a, length, s):
        uid = self.next_uid
        self.next_uid += 1
        return (a, None if length is None else a + length, s, uid)

    @staticmethod
    def _materialize(store) -> list:
        return [(it.arrival, it.departure, it.size, it.uid) for it in store]

    # ------------------------------------------------------------------ #
    # Rules: root mutations
    # ------------------------------------------------------------------ #
    @rule(row=rows)
    def append(self, row):
        a, d, s, uid = self._mint(*row)
        idx = self.store.append(a, d, s, uid)
        assert idx == len(self.model)
        self.model.append((a, d, s, uid))

    @rule(batch=st.lists(rows, min_size=0, max_size=6))
    def extend_columns(self, batch):
        minted = [self._mint(*row) for row in batch]
        first = self.store.extend_columns(
            [r[0] for r in minted],
            [r[1] for r in minted],
            [r[2] for r in minted],
            uid_start=minted[0][3] if minted else None,
        )
        assert first == len(self.model)
        self.model.extend(minted)

    @rule(batch=st.lists(rows, min_size=1, max_size=4),
          bad_index=st.integers(min_value=0, max_value=3))
    def extend_columns_bad_row_is_atomic(self, batch, bad_index):
        # one poisoned row must leave the store byte-for-byte unchanged
        bad_index = min(bad_index, len(batch) - 1)
        minted = [self._mint(*row) for row in batch]
        arr = [r[0] for r in minted]
        dep = [r[1] for r in minted]
        siz = [r[2] for r in minted]
        siz[bad_index] = 2.0  # size must lie in (0, 1]
        with pytest.raises(InvalidItemError) as err:
            self.store.extend_columns(arr, dep, siz)
        assert err.value.row == bad_index
        assert self._materialize(self.store) == self.model

    @precondition(lambda self: self.model)
    @rule()
    def pop(self):
        self.store.pop()
        self.model.pop()
        self.views.clear()  # windows may now dangle past the columns

    @rule()
    def clear(self):
        self.store.clear()
        self.model.clear()
        self.views.clear()

    @rule()
    def sort_by_arrival(self):
        self.store.sort_by_arrival()
        # Python's sorted is stable, matching the documented tie order
        self.model.sort(key=lambda row: row[0])

    # ------------------------------------------------------------------ #
    # Rules: slicing (the aliasing surface)
    # ------------------------------------------------------------------ #
    @rule(data=st.data())
    def make_view(self, data):
        n = len(self.model)
        start = data.draw(st.integers(0, n), label="start")
        stop = data.draw(st.integers(start, n), label="stop")
        view = self.store.slice(start, stop)
        assert view.is_view
        self.views.append((view, self.model[start:stop]))

    @precondition(lambda self: self.views)
    @rule(data=st.data())
    def make_subview(self, data):
        view, snapshot = data.draw(
            st.sampled_from(self.views), label="parent view"
        )
        n = len(snapshot)
        start = data.draw(st.integers(0, n), label="start")
        stop = data.draw(st.integers(start, n), label="stop")
        self.views.append((view.slice(start, stop), snapshot[start:stop]))

    @rule(data=st.data())
    def step_slice_is_a_fresh_root(self, data):
        # a non-unit step materializes a copy: appendable, not a view
        n = len(self.model)
        start = data.draw(st.integers(0, n), label="start")
        copy = self.store[start::2]
        assert not copy.is_view
        assert self._materialize(copy) == self.model[start::2]

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #
    @invariant()
    def store_matches_model(self):
        assert len(self.store) == len(self.model)
        assert self._materialize(self.store) == self.model
        for i, row in enumerate(self.model):
            assert self.store.row(i) == row
        if self.model:
            last = self.model[-1]
            got = self.store[-1]
            assert (got.arrival, got.departure, got.size, got.uid) == last

    @invariant()
    def sortedness_agrees(self):
        model_sorted = all(
            self.model[i][0] <= self.model[i + 1][0]
            for i in range(len(self.model) - 1)
        )
        assert self.store.is_sorted() == model_sorted

    @invariant()
    def uid_index_agrees(self):
        for i, (_, _, _, uid) in enumerate(self.model):
            assert self.store.row_of_uid(uid) == i
        with pytest.raises(KeyError):
            self.store.row_of_uid(self.next_uid + 1)

    @invariant()
    def columns_window_matches(self):
        arr, dep, siz, uids, start, stop = self.store.columns()
        assert stop - start == len(self.model)
        for i, (a, d, s, uid) in enumerate(self.model):
            j = start + i
            assert arr[j] == a
            assert (None if dep[j] != dep[j] else dep[j]) == d
            assert siz[j] == s and uids[j] == uid

    @invariant()
    def views_stay_frozen(self):
        # slice-time rows, regardless of later root appends and sorts
        for view, snapshot in self.views:
            assert len(view) == len(snapshot)
            assert self._materialize(view) == snapshot

    @invariant()
    def views_reject_mutation(self):
        for view, _ in self.views:
            with pytest.raises(InvalidInstanceError):
                view.append(0.0, 1.0, 0.5)
            with pytest.raises(InvalidInstanceError):
                view.extend_columns([0.0], [1.0], [0.5])
            with pytest.raises(InvalidInstanceError):
                view.pop()
            with pytest.raises(InvalidInstanceError):
                view.clear()
            with pytest.raises(InvalidInstanceError):
                view.sort_by_arrival()
            with pytest.raises(InvalidInstanceError):
                view.assign_sequential_uids()


ItemStoreMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestItemStoreStateful = ItemStoreMachine.TestCase
