"""Property-based equivalence tests on the simulator itself.

These check structural invariances that any correct MinUsageTime simulator
must satisfy: batch vs incremental driving, time-scaling homogeneity,
time-shift invariance, and the size/capacity duality (size-s items in
unit bins ≡ unit-scaled items in capacity-1/s' bins).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.anyfit import BestFit, FirstFit
from repro.algorithms.hybrid import HybridAlgorithm
from repro.core.instance import Instance
from repro.core.item import Item
from repro.core.simulation import IncrementalSimulation, simulate

sizes = st.floats(min_value=0.02, max_value=1.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=40.0, allow_nan=False)
lengths = st.floats(min_value=1.0, max_value=30.0, allow_nan=False)


@st.composite
def instances(draw, n_max=15):
    n = draw(st.integers(min_value=1, max_value=n_max))
    triples = []
    for _ in range(n):
        a = draw(times)
        triples.append((a, a + draw(lengths), draw(sizes)))
    return Instance.from_tuples(triples)


@given(inst=instances())
@settings(max_examples=30, deadline=None)
def test_batch_equals_incremental(inst):
    """simulate() and hand-driving IncrementalSimulation agree exactly."""
    batch = simulate(FirstFit(), inst)
    sim = IncrementalSimulation(FirstFit())
    for item in inst:
        sim.release(item)
    inc = sim.finish()
    assert batch.assignment == inc.assignment
    assert math.isclose(batch.cost, inc.cost)


@given(inst=instances(), factor=st.floats(min_value=0.25, max_value=8.0))
@settings(max_examples=30, deadline=None)
def test_time_scaling_homogeneity(inst, factor):
    """Scaling all times by c scales every Any-Fit cost by exactly c.

    (Not true of HA/CDFF, whose duration classes are scale-anchored.)
    """
    base = simulate(FirstFit(), inst)
    scaled = simulate(FirstFit(), inst.scaled(factor))
    assert math.isclose(scaled.cost, factor * base.cost, rel_tol=1e-9)
    assert scaled.n_bins == base.n_bins


@given(inst=instances(), delta=st.floats(min_value=-20.0, max_value=20.0))
@settings(max_examples=30, deadline=None)
def test_time_shift_invariance(inst, delta):
    """Translating time changes no Any-Fit decision or cost."""
    base = simulate(BestFit(), inst)
    shifted = simulate(BestFit(), inst.shifted(delta))
    assert math.isclose(shifted.cost, base.cost, rel_tol=1e-9, abs_tol=1e-9)
    assert shifted.n_bins == base.n_bins


@given(inst=instances(), scale=st.floats(min_value=0.5, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_capacity_size_duality(inst, scale):
    """Multiplying every size and the capacity by the same factor changes
    no First-Fit decision and no cost.

    (Note: capacity is NOT monotone for First-Fit — a larger bin can
    reshuffle decisions and *increase* cost; that classical anomaly is why
    only the exact duality is a law.)
    """
    shrunk = Instance(
        [Item(it.arrival, it.departure, it.size * scale, uid=it.uid)
         for it in inst],
        reassign_uids=False,
    )
    base = simulate(FirstFit(), inst)
    dual = simulate(FirstFit(), shrunk, capacity=scale)
    assert dual.assignment == base.assignment
    assert math.isclose(dual.cost, base.cost, rel_tol=1e-9)


@given(inst=instances())
@settings(max_examples=30, deadline=None)
def test_huge_capacity_cost_is_span(inst):
    """With capacity ≥ the total size, everything co-locates: FF's cost is
    exactly the span (one bin per busy component)."""
    total = sum(it.size for it in inst)
    res = simulate(FirstFit(), inst, capacity=total + 1.0)
    assert math.isclose(res.cost, inst.span, rel_tol=1e-9, abs_tol=1e-9)
    assert res.max_open == 1


@given(inst=instances())
@settings(max_examples=30, deadline=None)
def test_ha_shift_by_type_window_multiple(inst):
    """HA's classification is invariant under shifts by a multiple of the
    largest type window, because every (i, c) window boundary is preserved."""
    max_len = max(it.length for it in inst)
    import math as m

    width = 2.0 ** max(1, m.ceil(m.log2(max_len)))
    base = simulate(HybridAlgorithm(), inst)
    shifted = simulate(HybridAlgorithm(), inst.shifted(width))
    assert math.isclose(shifted.cost, base.cost, rel_tol=1e-9, abs_tol=1e-9)
