"""Property-based tests: every algorithm produces a feasible packing whose
cost respects the universal bounds, on arbitrary generated inputs."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.anyfit import BestFit, FirstFit, LastFit, NextFit, WorstFit
from repro.algorithms.classify import ClassifyByDuration
from repro.algorithms.hybrid import HybridAlgorithm
from repro.core.instance import Instance
from repro.core.simulation import simulate
from repro.core.validate import audit
from repro.offline.bounds import ceil_load_bound

sizes = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)
lengths = st.floats(min_value=1.0, max_value=40.0, allow_nan=False)


@st.composite
def instances(draw, n_max=20):
    n = draw(st.integers(min_value=1, max_value=n_max))
    triples = []
    for _ in range(n):
        a = draw(times)
        triples.append((a, a + draw(lengths), draw(sizes)))
    return Instance.from_tuples(triples)


FACTORIES = [
    FirstFit,
    BestFit,
    WorstFit,
    LastFit,
    NextFit,
    ClassifyByDuration,
    HybridAlgorithm,
]


@pytest.mark.parametrize("factory", FACTORIES)
@given(inst=instances())
@settings(max_examples=25, deadline=None)
def test_feasible_and_bounded(factory, inst):
    """Audit passes; cost sandwiched between the universal lower bounds and
    the one-bin-per-item upper bound."""
    result = simulate(factory(), inst)
    audit(result)
    assert result.cost >= inst.span - 1e-9
    assert result.cost >= inst.demand - 1e-9
    assert result.cost <= sum(it.length for it in inst) + 1e-9


@pytest.mark.parametrize("factory", [FirstFit, BestFit, WorstFit])
@given(inst=instances())
@settings(max_examples=25, deadline=None)
def test_anyfit_property(factory, inst):
    """Any-Fit algorithms open a new bin only when nothing fits: at every
    moment, at most one open bin has load < min active item size... weaker
    checkable invariant: the number of bins ever opened is at most
    2·⌈peak load⌉ per connected busy component for unit-ish items — here we
    check the simplest universal consequence: n_bins ≤ n_items."""
    result = simulate(factory(), inst)
    assert result.n_bins <= len(inst)


@given(inst=instances())
@settings(max_examples=25, deadline=None)
def test_algorithms_dominate_ceil_bound(inst):
    """Every online cost is ≥ the offline ceil-load lower bound."""
    lb = ceil_load_bound(inst)
    for factory in (FirstFit, HybridAlgorithm):
        result = simulate(factory(), inst)
        assert result.cost >= lb - 1e-6


@given(inst=instances())
@settings(max_examples=20, deadline=None)
def test_ha_equals_ff_with_infinite_threshold(inst):
    ha = simulate(HybridAlgorithm(threshold=lambda i: math.inf), inst)
    ff = simulate(FirstFit(), inst)
    assert math.isclose(ha.cost, ff.cost, rel_tol=1e-12)


@given(inst=instances())
@settings(max_examples=20, deadline=None)
def test_determinism(inst):
    """Two runs of the same deterministic algorithm agree exactly."""
    r1 = simulate(HybridAlgorithm(), inst)
    r2 = simulate(HybridAlgorithm(), inst)
    assert r1.assignment == r2.assignment
    assert r1.cost == r2.cost
