"""Property-based tests of the placement-kernel semantics (hypothesis).

Random traces — with deliberately colliding arrival/departure times to
exercise the tie-break rules — are driven through BOTH frontends (batch
``simulate()`` and the streaming ``Engine``), checking the DESIGN.md §5
invariants the kernel owns:

- departures at ``t`` are processed before arrivals at ``t``;
- simultaneous arrivals are placed strictly in release order;
- a bin is closed iff it is empty (never observed empty while open,
  closes exactly at its last member's departure);
- cost equals the sum of per-bin usage windows;
- the indexed open-bin structure is behaviourally identical to the
  linear-scan fallback.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BestFit, FirstFit, WorstFit
from repro.algorithms.base import OnlineAlgorithm
from repro.core.instance import Instance
from repro.core.simulation import simulate
from repro.engine import Engine
from repro.obs import MetricsListener

from ..conftest import aligned_algorithm_factories, all_algorithm_factories

# Coarse grids force plenty of equal-time events and exact-fill loads.
grid_times = st.integers(min_value=0, max_value=8).map(lambda k: k * 0.5)
grid_lengths = st.integers(min_value=1, max_value=8).map(lambda k: k * 0.5)
grid_sizes = st.sampled_from([0.125, 0.25, 1 / 3, 0.5, 0.75, 1.0])


@st.composite
def traces(draw, n_max=30):
    n = draw(st.integers(min_value=1, max_value=n_max))
    triples = []
    for _ in range(n):
        a = draw(grid_times)
        l = draw(grid_lengths)
        s = draw(grid_sizes)
        triples.append((a, a + l, s))
    return Instance.from_tuples(triples)


class Recording(OnlineAlgorithm):
    """First-Fit that records what it observes at every placement."""

    name = "RecordingFF"

    def reset(self):
        self.placements = []  # (time, placed uid, visible items snapshot)
        self.closed_nonempty = 0

    def place(self, item, sim):
        visible = [
            (it.uid, it.departure)
            for b in sim.open_bins
            for it in b.contents
        ]
        self.placements.append((sim.time, item.uid, visible))
        for b in sim.open_bins:
            assert b.n_items > 0, "open bin observed empty"
        found = sim.first_fit(item)
        return found if found is not None else sim.open_bin()

    def notify_close(self, bin_, sim):
        if bin_.n_items != 0:
            self.closed_nonempty += 1


def _run_both(algo_factory, inst):
    batch = simulate(algo_factory(), inst)
    eng = Engine(algo_factory(), record=True)
    for it in inst:
        eng.feed(it)
    eng.finish()
    return batch, eng.result()


class TestKernelSemantics:
    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_departures_processed_before_arrivals_at_equal_t(self, inst):
        """At arrival time t, no visible item may have departure ≤ t."""
        for frontend in ("batch", "engine"):
            algo = Recording()
            if frontend == "batch":
                simulate(algo, inst)
            else:
                eng = Engine(algo)
                for it in inst:
                    eng.feed(it)
                eng.finish()
            for t, _, visible in algo.placements:
                for uid, dep in visible:
                    assert dep is None or dep > t, (
                        f"item {uid} (departure {dep}) still visible at "
                        f"arrival time {t} via the {frontend} frontend"
                    )

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_simultaneous_arrivals_in_release_order(self, inst):
        algo = Recording()
        simulate(algo, inst)
        placed_uids = [uid for _, uid, _ in algo.placements]
        assert placed_uids == [it.uid for it in inst]

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_bin_closed_iff_empty(self, inst):
        algo = Recording()
        result = simulate(algo, inst)
        # notify_close never saw a non-empty bin, place() never saw an
        # empty open bin (asserted inline); records agree:
        assert algo.closed_nonempty == 0
        for rec in result.bins:
            last_out = max(result.departed_at[uid] for uid in rec.item_uids)
            assert rec.closed_at == last_out

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_cost_is_sum_of_usage_windows(self, inst):
        for factory in (FirstFit, BestFit):
            batch, streamed = _run_both(factory, inst)
            for res in (batch, streamed):
                assert math.isclose(
                    res.cost,
                    sum(rec.usage for rec in res.bins),
                    rel_tol=0,
                    abs_tol=1e-9,
                )

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_frontends_bit_identical(self, inst):
        for factory in (FirstFit, BestFit, WorstFit):
            batch, streamed = _run_both(factory, inst)
            assert streamed.cost == batch.cost
            assert streamed.assignment == batch.assignment
            assert streamed.bins == batch.bins

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_indexed_equals_linear_scan(self, inst):
        for factory in (FirstFit, BestFit, WorstFit):
            fast = simulate(factory(), inst, indexed=True)
            slow = simulate(factory(), inst, indexed=False)
            assert fast.cost == slow.cost
            assert fast.assignment == slow.assignment
            assert fast.bins == slow.bins


class TestObsParity:
    """The deterministic obs metrics are frontend-independent: the same
    trace through batch ``simulate()`` and the streaming ``Engine`` must
    produce byte-identical MetricsListener snapshots."""

    @given(traces())
    @settings(max_examples=25, deadline=None)
    def test_batch_and_engine_snapshots_identical(self, inst):
        # the traces() grid emits lengths in [0.5, 4.0]; re-bound the
        # RenTang factory so its declared [min, μ·min] range covers them
        from repro import RenTang

        factories = [
            (n, f) for n, f in all_algorithm_factories() if n != "RenTang64"
        ] + [("RenTang8", lambda: RenTang(8.0, min_length=0.5))]
        for name, factory in factories:
            ml_batch = MetricsListener()
            simulate(factory(), inst, listener=ml_batch)
            ml_engine = MetricsListener()
            eng = Engine(factory(), listeners=(ml_engine,))
            for it in inst:
                eng.feed(it)
            eng.finish()
            assert ml_engine.snapshot() == ml_batch.snapshot(), name

    def test_aligned_algorithms_on_binary_input(self):
        """CDFF and friends need aligned inputs; check them on σ_k."""
        from repro.workloads import binary_input

        inst = binary_input(64)
        for name, factory in aligned_algorithm_factories():
            ml_batch = MetricsListener()
            simulate(factory(), inst, listener=ml_batch)
            ml_engine = MetricsListener()
            eng = Engine(factory(), listeners=(ml_engine,))
            for it in inst:
                eng.feed(it)
            eng.finish()
            assert ml_engine.snapshot() == ml_batch.snapshot(), name
