"""Property-based tests: binary strings, aligned inputs, the reduction."""

import math
import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import item_type, type_departure_deadline
from repro.analysis.binary_strings import max_zero_run
from repro.core.instance import Instance
from repro.core.item import Item
from repro.reductions.alignment import align_departures, is_aligned, partition_aligned

bitstrings = st.text(alphabet="01", min_size=0, max_size=40)


class TestMaxZeroRun:
    @given(bitstrings)
    @settings(max_examples=150, deadline=None)
    def test_matches_regex(self, bits):
        runs = re.findall("0+", bits)
        expected = max((len(r) for r in runs), default=0)
        assert max_zero_run(bits) == expected

    @given(bitstrings)
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_length(self, bits):
        assert 0 <= max_zero_run(bits) <= len(bits)

    @given(bitstrings, bitstrings)
    @settings(max_examples=100, deadline=None)
    def test_concat_superadditive(self, a, b):
        """max_0(a||b) ≥ max(max_0(a), max_0(b))."""
        assert max_zero_run(a + b) >= max(max_zero_run(a), max_zero_run(b))

    @given(bitstrings)
    @settings(max_examples=100, deadline=None)
    def test_prepending_one_never_increases(self, bits):
        assert max_zero_run("1" + bits) == max_zero_run(bits)


@st.composite
def general_items(draw):
    a = draw(st.floats(min_value=0, max_value=200, allow_nan=False))
    l = draw(st.floats(min_value=1.0, max_value=150, allow_nan=False))
    s = draw(st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    return Item(a, a + l, s, uid=0)


class TestReductionProperties:
    @given(general_items())
    @settings(max_examples=150, deadline=None)
    def test_deadline_sandwiches_departure(self, item):
        T = item_type(item)
        deadline = type_departure_deadline(T)
        assert deadline >= item.departure - 1e-6
        assert deadline - item.arrival <= 4 * item.length + 1e-6

    @given(st.lists(general_items(), min_size=1, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_reduction_observations(self, raw_items):
        inst = Instance.from_tuples(
            [(it.arrival, it.departure, it.size) for it in raw_items]
        )
        red = align_departures(inst)
        assert red.span <= 4 * inst.span + 1e-6
        assert red.demand <= 4 * inst.demand + 1e-6
        # reduction is idempotent on departures already at type deadlines
        red2 = align_departures(red)
        for r1, r2 in zip(
            sorted(red, key=lambda r: r.uid), sorted(red2, key=lambda r: r.uid)
        ):
            assert r2.departure >= r1.departure - 1e-9


@st.composite
def aligned_instances(draw):
    n_cls = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=1, max_value=20))
    triples = [(0.0, float(2 ** (n_cls - 1)), 0.2)]  # anchor
    for _ in range(n):
        i = draw(st.integers(min_value=0, max_value=n_cls - 1))
        width = 2**i
        c = draw(st.integers(min_value=0, max_value=2 ** (n_cls - 1 - i) - 1))
        frac = draw(st.floats(min_value=0.51, max_value=1.0))
        length = max(0.5001, frac * width)
        s = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
        triples.append((float(c * width), float(c * width) + length, s))
    return Instance.from_tuples(triples)


class TestAlignedProperties:
    @given(aligned_instances())
    @settings(max_examples=50, deadline=None)
    def test_generated_inputs_are_aligned(self, inst):
        assert is_aligned(inst)

    @given(aligned_instances())
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_and_separates(self, inst):
        segs = partition_aligned(inst)
        assert sum(len(s) for s in segs) == len(inst)
        for a, b in zip(segs, segs[1:]):
            assert max(it.departure for it in a) <= min(
                it.arrival for it in b
            ) + 1e-9

    @given(aligned_instances())
    @settings(max_examples=50, deadline=None)
    def test_cdff_feasible_on_aligned(self, inst):
        from repro.algorithms.cdff import CDFF
        from repro.core.simulation import simulate
        from repro.core.validate import audit

        result = simulate(CDFF(), inst)
        audit(result)
        assert result.cost >= inst.span - 1e-9
