"""Property-based tests for the offline oracles and packers."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.offline.binpack import ffd, l2_lower_bound, min_bins
from repro.offline.bounds import opt_sandwich
from repro.offline.dual_coloring import dual_coloring
from repro.offline.optimal import opt_nonrepacking, opt_repacking
from repro.offline.waterfill import waterfill

sizes_list = st.lists(
    st.floats(min_value=0.02, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=10,
)


@st.composite
def small_instances(draw, n_max=7):
    n = draw(st.integers(min_value=1, max_value=n_max))
    triples = []
    for _ in range(n):
        a = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
        l = draw(st.floats(min_value=0.5, max_value=8, allow_nan=False))
        s = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
        triples.append((a, a + l, s))
    return Instance.from_tuples(triples)


class TestBinPackingProperties:
    @given(sizes_list)
    @settings(max_examples=80, deadline=None)
    def test_l2_le_opt_le_ffd(self, sizes):
        opt = min_bins(sizes)
        assert l2_lower_bound(sizes) <= opt <= ffd(sizes)

    @given(sizes_list)
    @settings(max_examples=80, deadline=None)
    def test_opt_at_least_volume(self, sizes):
        assert min_bins(sizes) >= math.ceil(sum(sizes) - 1e-9)

    @given(sizes_list, st.floats(min_value=0.02, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_items(self, sizes, extra):
        assert min_bins(sizes + [extra]) >= min_bins(sizes)

    @given(sizes_list)
    @settings(max_examples=60, deadline=None)
    def test_at_most_n(self, sizes):
        assert min_bins(sizes) <= len(sizes)


class TestOracleProperties:
    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_sandwich_chain(self, inst):
        """closed-form lower ≤ OPT_R ≤ OPT_NR ≤ Σ lengths, and Lemma 3.1."""
        closed = opt_sandwich(inst)
        oracle = opt_repacking(inst)
        nr = opt_nonrepacking(inst, max_items=8)
        assert closed.lower <= oracle.upper + 1e-6
        assert oracle.lower <= nr + 1e-6
        assert nr <= sum(it.length for it in inst) + 1e-9
        assert oracle.upper <= closed.upper + 1e-6

    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_waterfill_between_opt_and_lemma31(self, inst):
        wf = waterfill(inst)
        oracle = opt_repacking(inst)
        assert wf.cost >= oracle.lower - 1e-6
        assert wf.cost <= 2 * opt_sandwich(inst).lower + 1e-6 or \
            wf.cost <= opt_sandwich(inst).upper + 1e-6

    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_dual_coloring_feasible_and_above_optnr(self, inst):
        dc = dual_coloring(inst)
        dc.audit()
        nr = opt_nonrepacking(inst, max_items=8)
        assert dc.cost >= nr - 1e-6  # DC is one feasible NR packing
